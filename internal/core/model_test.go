package core

import (
	"math"
	"testing"
	"testing/quick"

	"respeed/internal/mathx"
	"respeed/internal/platform"
)

func heraParams() Params {
	return FromConfig(platform.NewConfig(platform.Hera(), platform.XScale()))
}

func atlasCrusoe() Params {
	return FromConfig(platform.NewConfig(platform.Atlas(), platform.Crusoe()))
}

func TestFromConfig(t *testing.T) {
	p := heraParams()
	if p.Lambda != 3.38e-6 || p.C != 300 || p.V != 15.4 || p.R != 300 {
		t.Errorf("platform params: %+v", p)
	}
	if p.Kappa != 1550 || p.Pidle != 60 {
		t.Errorf("processor params: %+v", p)
	}
	if math.Abs(p.Pio-5.23125) > 1e-9 {
		t.Errorf("Pio = %g, want 5.23125", p.Pio)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateRejects(t *testing.T) {
	good := heraParams()
	mutations := []func(*Params){
		func(p *Params) { p.Lambda = 0 },
		func(p *Params) { p.Lambda = -1 },
		func(p *Params) { p.C = -1 },
		func(p *Params) { p.V = -1 },
		func(p *Params) { p.R = -1 },
		func(p *Params) { p.Kappa = -1 },
		func(p *Params) { p.Pidle = -1 },
		func(p *Params) { p.Pio = -1 },
	}
	for i, mut := range mutations {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

// TestProposition1Recursion verifies that ExpectedTimeSingle satisfies
// the defining recursive equation:
//
//	T = (W+V)/σ + p·(R + T) + (1−p)·C,  p = 1 − e^{−λW/σ}.
func TestProposition1Recursion(t *testing.T) {
	p := heraParams()
	for _, sigma := range []float64{0.15, 0.4, 1} {
		for _, w := range []float64{100, 2764, 50000} {
			T := p.ExpectedTimeSingle(w, sigma)
			pr := mathx.OneMinusExpNeg(p.Lambda * w / sigma)
			rhs := (w+p.V)/sigma + pr*(p.R+T) + (1-pr)*p.C
			if !mathx.ApproxEqual(T, rhs, 1e-10, 1e-9) {
				t.Errorf("σ=%g W=%g: T=%g, recursion RHS=%g", sigma, w, T, rhs)
			}
		}
	}
}

// TestProposition2Recursion verifies ExpectedTime against its recursion:
//
//	T(W,σ1,σ2) = (W+V)/σ1 + p₁·(R + T(W,σ2,σ2)) + (1−p₁)·C.
func TestProposition2Recursion(t *testing.T) {
	p := heraParams()
	for _, s1 := range []float64{0.15, 0.6, 1} {
		for _, s2 := range []float64{0.4, 0.8} {
			for _, w := range []float64{500, 2764, 20000} {
				T := p.ExpectedTime(w, s1, s2)
				p1 := mathx.OneMinusExpNeg(p.Lambda * w / s1)
				rhs := (w+p.V)/s1 + p1*(p.R+p.ExpectedTimeSingle(w, s2)) + (1-p1)*p.C
				if !mathx.ApproxEqual(T, rhs, 1e-10, 1e-9) {
					t.Errorf("σ=(%g,%g) W=%g: T=%g, RHS=%g", s1, s2, w, T, rhs)
				}
			}
		}
	}
}

func TestTwoSpeedReducesToSingle(t *testing.T) {
	p := heraParams()
	f := func(wRaw, sRaw float64) bool {
		w := 10 + math.Abs(math.Mod(wRaw, 1e5))
		s := 0.1 + math.Abs(math.Mod(sRaw, 0.9))
		return mathx.ApproxEqual(
			p.ExpectedTime(w, s, s), p.ExpectedTimeSingle(w, s), 1e-10, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestProposition3EnergyStructure verifies the energy decomposition: with
// zero powers energy is zero; with only Pidle set, E = Pidle × T.
func TestProposition3EnergyStructure(t *testing.T) {
	p := heraParams()
	zero := p
	zero.Kappa, zero.Pidle, zero.Pio = 0, 0, 0
	if got := zero.ExpectedEnergy(1000, 0.6, 0.8); got != 0 {
		t.Errorf("zero-power energy = %g", got)
	}
	idleOnly := p
	idleOnly.Kappa, idleOnly.Pio = 0, 0
	idleOnly.Pidle = 42
	w, s1, s2 := 2764.0, 0.4, 0.8
	gotE := idleOnly.ExpectedEnergy(w, s1, s2)
	wantE := 42 * idleOnly.ExpectedTime(w, s1, s2)
	if !mathx.ApproxEqual(gotE, wantE, 1e-9, 0) {
		t.Errorf("idle-only energy = %g, want Pidle·T = %g", gotE, wantE)
	}
}

func TestEnergyPositivity(t *testing.T) {
	p := atlasCrusoe()
	f := func(wRaw, s1Raw, s2Raw float64) bool {
		w := 1 + math.Abs(math.Mod(wRaw, 1e5))
		s1 := 0.1 + math.Abs(math.Mod(s1Raw, 0.9))
		s2 := 0.1 + math.Abs(math.Mod(s2Raw, 0.9))
		return p.ExpectedEnergy(w, s1, s2) > 0 && p.ExpectedTime(w, s1, s2) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeMonotoneInLambda(t *testing.T) {
	// More errors → longer expected execution.
	base := heraParams()
	hi := base
	hi.Lambda *= 10
	w, s1, s2 := 3000.0, 0.6, 0.8
	if !(hi.ExpectedTime(w, s1, s2) > base.ExpectedTime(w, s1, s2)) {
		t.Error("expected time should increase with λ")
	}
	if !(hi.ExpectedEnergy(w, s1, s2) > base.ExpectedEnergy(w, s1, s2)) {
		t.Error("expected energy should increase with λ")
	}
}

func TestTimeDecreasesWithFirstSpeed(t *testing.T) {
	p := heraParams()
	w := 2000.0
	prev := math.Inf(1)
	for _, s1 := range []float64{0.15, 0.4, 0.6, 0.8, 1} {
		cur := p.ExpectedTime(w, s1, 0.4)
		if !(cur < prev) {
			t.Errorf("T not decreasing at σ1=%g: %g ≥ %g", s1, cur, prev)
		}
		prev = cur
	}
}

func TestFirstOrderMatchesExactSmallLambda(t *testing.T) {
	// For λW ≪ 1 the Taylor forms (Eqs. 2–3) must agree with the exact
	// expectations to O((λW)²).
	p := heraParams()
	for _, s1 := range []float64{0.4, 0.8} {
		for _, s2 := range []float64{0.4, 1} {
			for _, w := range []float64{500, 2764, 10000} {
				// Dropped terms are second order in λ×(any duration); the
				// paper's Eq. (3) additionally evaluates its λV term at σ1's
				// power where the exact expansion has σ2's, an O(λV)
				// difference, so the energy tolerance carries that term too.
				u := p.Lambda * (w + p.C + p.R + p.V) / math.Min(s1, s2)
				tolT := 10 * u * u
				tolE := 10*u*u + 3*p.Lambda*p.V/(s1*s2)
				tExact := p.TimeOverheadExact(w, s1, s2)
				tFO := p.TimeOverheadFO(w, s1, s2)
				if mathx.RelErr(tExact, tFO) > tolT {
					t.Errorf("time σ=(%g,%g) W=%g: exact=%g FO=%g relerr=%g > %g",
						s1, s2, w, tExact, tFO, mathx.RelErr(tExact, tFO), tolT)
				}
				eExact := p.EnergyOverheadExact(w, s1, s2)
				eFO := p.EnergyOverheadFO(w, s1, s2)
				if mathx.RelErr(eExact, eFO) > tolE {
					t.Errorf("energy σ=(%g,%g) W=%g: exact=%g FO=%g", s1, s2, w, eExact, eFO)
				}
			}
		}
	}
}

func TestWEnergyMinimizesEnergyFO(t *testing.T) {
	// We must be the stationary point of Eq. (3): check first-order
	// optimality numerically.
	p := atlasCrusoe()
	for _, s1 := range []float64{0.45, 0.8} {
		for _, s2 := range []float64{0.6, 1} {
			we := p.WEnergy(s1, s2)
			d := mathx.Derivative(func(w float64) float64 {
				return p.EnergyOverheadFO(w, s1, s2)
			}, we)
			scale := p.EnergyOverheadFO(we, s1, s2) / we
			if math.Abs(d) > 1e-5*scale {
				t.Errorf("σ=(%g,%g): dE/dW at We = %g", s1, s2, d)
			}
		}
	}
}

func TestWTimeMinimizesTimeFO(t *testing.T) {
	p := heraParams()
	for _, s1 := range []float64{0.4, 1} {
		for _, s2 := range []float64{0.4, 0.8} {
			wt := p.WTime(s1, s2)
			d := mathx.Derivative(func(w float64) float64 {
				return p.TimeOverheadFO(w, s1, s2)
			}, wt)
			if math.Abs(d) > 1e-10 {
				t.Errorf("σ=(%g,%g): dT/dW at Wt = %g", s1, s2, d)
			}
		}
	}
}

func TestYoungDalySilentSpecialization(t *testing.T) {
	// With σ1 = σ2 = 1, WTime = sqrt((C+V)/λ) — the silent-error
	// Young/Daly formula quoted in the paper's introduction.
	p := heraParams()
	got := p.WTime(1, 1)
	want := math.Sqrt((p.C + p.V) / p.Lambda)
	if !mathx.ApproxEqual(got, want, 1e-12, 0) {
		t.Errorf("WTime(1,1) = %g, want %g", got, want)
	}
}

func TestRhoMinIsExactThreshold(t *testing.T) {
	// Solving exactly at ρ_{i,j} must be feasible (double root); solving
	// just below must not.
	p := heraParams()
	for _, s1 := range []float64{0.4, 0.8} {
		for _, s2 := range []float64{0.4, 1} {
			rhoMin := p.RhoMin(s1, s2)
			if _, err := p.OptimalW(s1, s2, rhoMin*(1+1e-9)); err != nil {
				t.Errorf("σ=(%g,%g): ρ slightly above ρmin should be feasible", s1, s2)
			}
			if _, err := p.OptimalW(s1, s2, rhoMin*(1-1e-6)); err == nil {
				t.Errorf("σ=(%g,%g): ρ below ρmin should be infeasible", s1, s2)
			}
		}
	}
}

func TestOptimalWClamping(t *testing.T) {
	p := heraParams()
	s1, s2 := 0.4, 0.4
	// Loose bound: Wopt = We (interior optimum).
	we := p.WEnergy(s1, s2)
	w, err := p.OptimalW(s1, s2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(w, we, 1e-9, 0) {
		t.Errorf("loose bound: Wopt=%g, want We=%g", w, we)
	}
	// Tight bound: Wopt must sit on the feasibility boundary, i.e. the
	// time overhead equals ρ there (up to roundoff).
	rhoTight := p.RhoMin(s1, s2) * 1.0000001
	w, err = p.OptimalW(s1, s2, rhoTight)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.TimeOverheadFO(w, s1, s2); math.Abs(got-rhoTight) > 1e-6*rhoTight {
		t.Errorf("tight bound: T/W at Wopt = %g, want ≈ ρ=%g", got, rhoTight)
	}
}

func TestOptimalWRespectsBound(t *testing.T) {
	// Property: whenever OptimalW succeeds, the first-order constraint
	// holds at the returned W.
	p := atlasCrusoe()
	speeds := []float64{0.45, 0.6, 0.8, 0.9, 1}
	for _, rho := range []float64{1.2, 1.5, 2, 3, 5, 10} {
		for _, s1 := range speeds {
			for _, s2 := range speeds {
				w, err := p.OptimalW(s1, s2, rho)
				if err != nil {
					continue
				}
				if got := p.TimeOverheadFO(w, s1, s2); got > rho*(1+1e-9) {
					t.Errorf("ρ=%g σ=(%g,%g): T/W=%g violates bound", rho, s1, s2, got)
				}
			}
		}
	}
}

func TestFeasibleWindowOrdering(t *testing.T) {
	p := heraParams()
	w1, w2, err := p.FeasibleWindow(0.4, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(0 < w1 && w1 < w2) {
		t.Errorf("window [%g, %g] not ordered/positive", w1, w2)
	}
	// Interior points satisfy the bound; exterior points violate it.
	mid := (w1 + w2) / 2
	if p.TimeOverheadFO(mid, 0.4, 0.4) > 3 {
		t.Error("midpoint of feasible window violates bound")
	}
	if p.TimeOverheadFO(w1/2, 0.4, 0.4) < 3 {
		t.Error("point below window should violate bound")
	}
	if p.TimeOverheadFO(w2*2, 0.4, 0.4) < 3 {
		t.Error("point above window should violate bound")
	}
}

func TestQuadraticCoefficientsSigns(t *testing.T) {
	p := heraParams()
	a, b, c := p.QuadraticCoefficients(0.4, 0.4, 3)
	if !(a > 0) {
		t.Errorf("a = %g, want > 0", a)
	}
	if !(c > 0) {
		t.Errorf("c = %g, want > 0", c)
	}
	if !(b < 0) {
		t.Errorf("b = %g, want < 0 for a feasible bound", b)
	}
}

func TestSolveEmptySpeeds(t *testing.T) {
	p := heraParams()
	if _, err := p.Solve(nil, 3); err == nil {
		t.Error("Solve with empty speeds should error")
	}
	if _, err := p.SolveSingleSpeed(nil, 3); err == nil {
		t.Error("SolveSingleSpeed with empty speeds should error")
	}
}

func TestCheckArgsPanics(t *testing.T) {
	p := heraParams()
	for _, call := range []func(){
		func() { p.ExpectedTime(0, 1, 1) },
		func() { p.ExpectedTime(1, 0, 1) },
		func() { p.ExpectedTime(1, 1, -1) },
		func() { p.ExpectedEnergy(-5, 1, 1) },
		func() { p.TimeOverheadFO(0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid arguments")
				}
			}()
			call()
		}()
	}
}

func TestSigma1TableInfeasibleRowShape(t *testing.T) {
	p, speeds := heraParams(), platform.XScale().Speeds
	rows := p.Sigma1Table(speeds, 1.4)
	if !math.IsNaN(rows[0].Sigma2) || rows[0].Feasible {
		t.Errorf("infeasible row should carry NaN σ2: %+v", rows[0])
	}
	if rows[0].RhoMin <= 0 {
		t.Error("infeasible row should still report ρmin")
	}
}

func TestEnergyComponentsSumToOverhead(t *testing.T) {
	p := heraParams()
	for _, s1 := range []float64{0.4, 0.8} {
		for _, s2 := range []float64{0.4, 1} {
			for _, w := range []float64{500, 2764, 20000} {
				ec := p.EnergyOverheadComponents(w, s1, s2)
				want := p.EnergyOverheadFO(w, s1, s2)
				if !mathx.ApproxEqual(ec.Total(), want, 1e-12, 0) {
					t.Errorf("σ=(%g,%g) W=%g: components %g != FO %g", s1, s2, w, ec.Total(), want)
				}
				if ec.FirstExecution <= 0 || ec.PerPattern <= 0 {
					t.Errorf("degenerate components %+v", ec)
				}
			}
		}
	}
}

func TestEnergyComponentsDominance(t *testing.T) {
	// At the catalog λ the first-execution term dominates: the paper's
	// regime where overhead ≈ the error-free cost plus small corrections.
	p := heraParams()
	ec := p.EnergyOverheadComponents(2764, 0.4, 0.4)
	if !(ec.FirstExecution > 0.9*ec.Total()) {
		t.Errorf("first execution should dominate at catalog λ: %+v", ec)
	}
}

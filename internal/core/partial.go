package core

import (
	"fmt"
	"math"

	"respeed/internal/mathx"
)

// PartialPattern describes the intermediate-verification extension the
// paper points to in its related work ([Bautista-Gomez et al. 2015],
// [Cavelan et al. 2015]): the W work units of a pattern are split into
// Segments equal chunks; after each of the first Segments−1 chunks a
// cheap *partial* verification runs (cost PartialCost at full speed,
// recall Recall — it detects existing corruption with probability
// Recall); after the last chunk the usual *guaranteed* verification (the
// pattern's V) runs before the checkpoint, so checkpoints remain
// verified. Earlier detection cuts the time lost to a silent error from
// the whole pattern down to the prefix before the detecting check.
//
// With Segments = 1 the pattern degenerates to the paper's base pattern
// and every quantity below reduces exactly to Propositions 1–3.
type PartialPattern struct {
	// Segments is m ≥ 1, the number of equal work chunks.
	Segments int
	// Recall is r ∈ [0, 1], the detection probability of one partial
	// verification over corrupted state.
	Recall float64
	// PartialCost is the cost of one partial verification at full speed,
	// in seconds (at speed σ it takes PartialCost/σ).
	PartialCost float64
}

// Validate rejects nonsensical patterns.
func (pp PartialPattern) Validate() error {
	if pp.Segments < 1 {
		return fmt.Errorf("core: partial pattern needs ≥ 1 segment (got %d)", pp.Segments)
	}
	if pp.Recall < 0 || pp.Recall > 1 {
		return fmt.Errorf("core: recall %g outside [0,1]", pp.Recall)
	}
	if pp.PartialCost < 0 {
		return fmt.Errorf("core: negative partial verification cost %g", pp.PartialCost)
	}
	return nil
}

// attemptStats carries one attempt's exact expectations at speed σ:
// expected duration A, expected energy AE, and failure probability F
// (the probability that the attempt ends in a detection instead of a
// committed checkpoint; the guaranteed final verification makes every
// corrupted attempt fail).
type attemptStats struct {
	duration float64
	energy   float64
	fail     float64
}

// attempt computes the exact attempt statistics by direct summation over
// the first-corruption segment and the detecting check — no Taylor
// truncation. Work per segment is W/m; the per-segment corruption
// probability is q = 1 − e^{−λW/(mσ)}.
func (p Params) attempt(pp PartialPattern, w, sigma float64) attemptStats {
	m := pp.Segments
	seg := w / (float64(m) * sigma) // compute time per segment
	cp := pp.PartialCost / sigma    // partial check time
	cg := p.V / sigma               // guaranteed check time
	q := mathx.OneMinusExpNeg(p.Lambda * w / (float64(m) * sigma))
	pc := p.cpuPower(sigma) // checks and compute run at σ's power

	succProb := math.Pow(1-q, float64(m))
	succDur := float64(m)*seg + float64(m-1)*cp + cg
	succEnergy := succDur * pc

	var st attemptStats
	st.duration = succProb * succDur
	st.energy = succProb * succEnergy
	st.fail = 1 - succProb

	// First corruption in segment j (1-based), probability (1−q)^{j−1}·q.
	for j := 1; j <= m; j++ {
		pj := math.Pow(1-q, float64(j-1)) * q
		var dur float64
		if j <= m-1 {
			// Partial checks j..m−1 may detect; the guaranteed check is the
			// backstop.
			missAll := math.Pow(1-pp.Recall, float64(m-j))
			for k := j; k <= m-1; k++ {
				pDetect := math.Pow(1-pp.Recall, float64(k-j)) * pp.Recall
				dur += pDetect * (float64(k)*seg + float64(k)*cp)
			}
			dur += missAll * succDur
		} else {
			// Corruption in the final segment: only the guaranteed check
			// sees it.
			dur = succDur
		}
		st.duration += pj * dur
		st.energy += pj * dur * pc
	}
	return st
}

// ExpectedTimePartial returns the exact expected time of a pattern with
// intermediate partial verifications, first execution at σ1 and all
// re-executions at σ2 (same renewal structure as Proposition 2):
//
//	T = A(σ1) + F(σ1)·(R + T2),   T2 = (A(σ2) + F(σ2)·R + S(σ2)·C)/S(σ2)…
//
// solved in closed form from the single-speed fixed point, where A is
// the expected attempt duration and F the attempt failure probability.
func (p Params) ExpectedTimePartial(pp PartialPattern, w, s1, s2 float64) float64 {
	checkArgs(w, s1, s2)
	if err := pp.Validate(); err != nil {
		panic(err)
	}
	a2 := p.attempt(pp, w, s2)
	// Single-speed fixed point: T2 = A + F(R+T2) + (1−F)C.
	t2 := (a2.duration + a2.fail*p.R + (1-a2.fail)*p.C) / (1 - a2.fail)
	a1 := p.attempt(pp, w, s1)
	return a1.duration + a1.fail*(p.R+t2) + (1-a1.fail)*p.C
}

// ExpectedEnergyPartial is the energy analogue of ExpectedTimePartial:
// compute and verification segments bill κσ³+Pidle, recovery and
// checkpoint bill Pio+Pidle.
func (p Params) ExpectedEnergyPartial(pp PartialPattern, w, s1, s2 float64) float64 {
	checkArgs(w, s1, s2)
	if err := pp.Validate(); err != nil {
		panic(err)
	}
	pio := p.ioPower()
	a2 := p.attempt(pp, w, s2)
	e2 := (a2.energy + a2.fail*p.R*pio + (1-a2.fail)*p.C*pio) / (1 - a2.fail)
	a1 := p.attempt(pp, w, s1)
	return a1.energy + a1.fail*(p.R*pio+e2) + (1-a1.fail)*p.C*pio
}

// TimeOverheadPartial returns T/W for the partial-verification pattern.
func (p Params) TimeOverheadPartial(pp PartialPattern, w, s1, s2 float64) float64 {
	return p.ExpectedTimePartial(pp, w, s1, s2) / w
}

// EnergyOverheadPartial returns E/W for the partial-verification pattern.
func (p Params) EnergyOverheadPartial(pp PartialPattern, w, s1, s2 float64) float64 {
	return p.ExpectedEnergyPartial(pp, w, s1, s2) / w
}

// OptimalSegments scans m = 1..maxM (with the W-subproblem minimized
// numerically for each m) and returns the segment count minimizing the
// exact energy overhead subject to TimeOverheadPartial ≤ rho, together
// with its W and overheads. It returns ErrInfeasible when not even some
// m admits a feasible W.
func (p Params) OptimalSegments(tpl PartialPattern, s1, s2, rho float64, maxM int) (best PartialSolution, err error) {
	if maxM < 1 {
		return PartialSolution{}, fmt.Errorf("core: maxM must be ≥ 1")
	}
	found := false
	for m := 1; m <= maxM; m++ {
		pp := tpl
		pp.Segments = m
		sol, err := p.optimalWPartial(pp, s1, s2, rho)
		if err != nil {
			continue
		}
		if !found || sol.EnergyOverhead < best.EnergyOverhead {
			best, found = sol, true
		}
	}
	if !found {
		return PartialSolution{}, ErrInfeasible
	}
	return best, nil
}

// PartialSolution is the optimum for one partial-verification setup.
type PartialSolution struct {
	Pattern                      PartialPattern
	Sigma1, Sigma2               float64
	W                            float64
	TimeOverhead, EnergyOverhead float64
}

// optimalWPartial minimizes the exact energy overhead over W subject to
// the exact time bound, mirroring optimize.ExactPair's structure.
func (p Params) optimalWPartial(pp PartialPattern, s1, s2, rho float64) (PartialSolution, error) {
	timeOH := func(w float64) float64 { return p.TimeOverheadPartial(pp, w, s1, s2) }
	energyOH := func(w float64) float64 { return p.EnergyOverheadPartial(pp, w, s1, s2) }
	seed := p.WTime(s1, s2)
	if !(seed > 0) || math.IsInf(seed, 0) {
		seed = 1
	}
	wt, err := mathx.MinimizeConvex1D(timeOH, seed, 1e-9)
	if err != nil || timeOH(wt) > rho {
		return PartialSolution{}, ErrInfeasible
	}
	lo, hi := wt, wt
	for timeOH(lo) <= rho && lo > 1e-12 {
		lo /= 2
	}
	for timeOH(hi) <= rho && hi < 1e18 {
		hi *= 2
	}
	f := func(w float64) float64 { return timeOH(w) - rho }
	w1, err1 := mathx.BrentRoot(f, lo, wt, 1e-9*wt)
	if err1 != nil {
		w1 = lo
	}
	w2, err2 := mathx.BrentRoot(f, wt, hi, 1e-9*wt)
	if err2 != nil {
		w2 = hi
	}
	wBest := w1
	if w2 > w1 {
		if wInt, err := mathx.BrentMin(energyOH, w1, w2, 1e-12); err == nil {
			wBest = wInt
		}
		for _, cand := range []float64{w1, w2} {
			if energyOH(cand) < energyOH(wBest) {
				wBest = cand
			}
		}
	}
	return PartialSolution{
		Pattern: pp, Sigma1: s1, Sigma2: s2, W: wBest,
		TimeOverhead:   timeOH(wBest),
		EnergyOverhead: energyOH(wBest),
	}, nil
}

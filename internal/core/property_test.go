package core

import (
	"math"
	"testing"
	"testing/quick"

	"respeed/internal/mathx"
	"respeed/internal/platform"
)

// unit maps any float (including NaN/±Inf, which testing/quick does
// generate) into [0, 1).
func unit(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Abs(math.Mod(x, 1))
}

// mix2 combines two raw floats into one unit value without overflow.
func mix2(a, b float64) float64 { return unit(unit(a) + unit(b)) }

// genParams maps three raw quick-generated floats onto a physically
// plausible parameter set spanning the catalog's ranges.
func genParams(a, b, c float64) Params {
	return Params{
		Lambda: 1e-7 * math.Pow(10, 3*unit(a)), // 1e-7 .. 1e-4
		C:      50 + 4950*unit(b),
		V:      1 + 199*unit(c),
		R:      50 + 4950*unit(b),
		Kappa:  1000 + 5000*mix2(a, b),
		Pidle:  100 * mix2(b, c),
		Pio:    50 * mix2(a, c),
	}
}

// genSpeeds maps two raw floats to a positive speed pair in [0.2, 1].
func genSpeeds(x, y float64) (s1, s2 float64) {
	return 0.2 + 0.8*unit(x), 0.2 + 0.8*unit(y)
}

func TestPropertyWoptInsideWindow(t *testing.T) {
	// For every feasible instance, Theorem 1's Wopt lies inside the
	// feasibility window [W1, W2].
	f := func(a, b, c, x, y, rRaw float64) bool {
		p := genParams(a, b, c)
		s1, s2 := genSpeeds(x, y)
		rho := p.RhoMin(s1, s2) * (1 + 3*unit(rRaw))
		w, err := p.OptimalW(s1, s2, rho)
		if err != nil {
			return true // infeasible borderline instances are fine
		}
		w1, w2, err := p.FeasibleWindow(s1, s2, rho)
		if err != nil {
			return false
		}
		return w >= w1*(1-1e-9) && w <= w2*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWoptIsConstrainedOptimum(t *testing.T) {
	// No W inside the window beats Wopt on first-order energy.
	f := func(a, b, c, x, y float64) bool {
		p := genParams(a, b, c)
		s1, s2 := genSpeeds(x, y)
		rho := p.RhoMin(s1, s2) * 1.5
		w, err := p.OptimalW(s1, s2, rho)
		if err != nil {
			return true
		}
		w1, w2, _ := p.FeasibleWindow(s1, s2, rho)
		best := p.EnergyOverheadFO(w, s1, s2)
		for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
			cand := w1 + frac*(w2-w1)
			if cand <= 0 {
				continue
			}
			if p.EnergyOverheadFO(cand, s1, s2) < best*(1-1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRhoMinDecreasingInSecondSpeed(t *testing.T) {
	// A faster re-execution speed can only relax the feasibility
	// threshold: ρmin(σ1, σ2) is non-increasing in σ2.
	f := func(a, b, c, x float64) bool {
		p := genParams(a, b, c)
		s1, _ := genSpeeds(x, x)
		prev := math.Inf(1)
		for _, s2 := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			r := p.RhoMin(s1, s2)
			if r > prev*(1+1e-12) {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExpectedTimeIncreasingInW(t *testing.T) {
	f := func(a, b, c, x, y, wRaw float64) bool {
		p := genParams(a, b, c)
		s1, s2 := genSpeeds(x, y)
		w := 100 + 1e5*unit(wRaw)
		return p.ExpectedTime(w*1.1, s1, s2) > p.ExpectedTime(w, s1, s2) &&
			p.ExpectedEnergy(w*1.1, s1, s2) > p.ExpectedEnergy(w, s1, s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEnergyMonotoneInPowers(t *testing.T) {
	// More static/dynamic/I/O power never reduces expected energy.
	f := func(a, b, c, x, y float64) bool {
		p := genParams(a, b, c)
		s1, s2 := genSpeeds(x, y)
		const w = 2000
		base := p.ExpectedEnergy(w, s1, s2)
		up := p
		up.Pidle += 10
		if p2 := up.ExpectedEnergy(w, s1, s2); p2 < base {
			return false
		}
		up = p
		up.Pio += 10
		if p2 := up.ExpectedEnergy(w, s1, s2); p2 < base {
			return false
		}
		up = p
		up.Kappa += 100
		return up.ExpectedEnergy(w, s1, s2) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertySolveBestIsGridMinimum(t *testing.T) {
	// Solve's Best must equal the minimum feasible energy in its own
	// grid, and every feasible grid point must satisfy the bound.
	speeds := platform.XScale().Speeds
	f := func(a, b, c, rRaw float64) bool {
		p := genParams(a, b, c)
		rho := 1.2 + 8*unit(rRaw)
		sol, err := p.Solve(speeds, rho)
		if err != nil {
			return true
		}
		minE := math.Inf(1)
		for _, g := range sol.Pairs {
			if !g.Feasible {
				continue
			}
			if g.TimeOverhead > rho*(1+1e-9) {
				return false
			}
			minE = math.Min(minE, g.EnergyOverhead)
		}
		return mathx.ApproxEqual(minE, sol.Best.EnergyOverhead, 1e-12, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTwoSpeedNeverWorseFO(t *testing.T) {
	// The single-speed solution space is a subset: the two-speed optimum
	// is never worse, for any parameters and bound.
	speeds := platform.Crusoe().Speeds
	f := func(a, b, c, rRaw float64) bool {
		p := genParams(a, b, c)
		rho := 1.2 + 8*unit(rRaw)
		two, err2 := p.Solve(speeds, rho)
		one, err1 := p.SolveSingleSpeed(speeds, rho)
		if err1 != nil || err2 != nil {
			// If single-speed is feasible, two-speed must be too.
			return !(err1 == nil && err2 != nil)
		}
		return two.Best.EnergyOverhead <= one.Best.EnergyOverhead*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCombinedRecursionPositiveAndMonotone(t *testing.T) {
	// The combined expectations are positive and increase with either
	// error rate.
	f := func(a, b, c, x, y, fRaw float64) bool {
		p := genParams(a, b, c)
		s1, s2 := genSpeeds(x, y)
		frac := unit(fRaw)
		cp := p.Split(frac)
		const w = 2764
		base := cp.ExpectedTimeCombined(w, s1, s2)
		if !(base > 0) {
			return false
		}
		up := cp
		up.LambdaF *= 2
		if up.LambdaF > 0 {
			if got := up.ExpectedTimeCombined(w, s1, s2); got < base*(1-1e-12) {
				return false
			}
		}
		up = cp
		up.LambdaS *= 2
		if up.LambdaS > 0 {
			if got := up.ExpectedTimeCombined(w, s1, s2); got < base*(1-1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPartialBoundedByExtremes(t *testing.T) {
	// For any recall, the partial-pattern expected time lies between the
	// perfect-recall (fastest detection) and zero-recall (base pattern,
	// modulo check cost) extremes with the same costs.
	f := func(a, b, c, x, y, rRaw float64) bool {
		p := genParams(a, b, c)
		s1, s2 := genSpeeds(x, y)
		recall := unit(rRaw)
		const w, m = 2764.0, 5
		mk := func(r float64) float64 {
			return p.ExpectedTimePartial(PartialPattern{Segments: m, Recall: r, PartialCost: 2}, w, s1, s2)
		}
		mid := mk(recall)
		lo := mk(1)
		hi := mk(0)
		return mid >= lo*(1-1e-12) && mid <= hi*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"math"
	"testing"

	"respeed/internal/platform"
)

// paperRow is one row of a Section 4.2 table.
type paperRow struct {
	sigma1   float64
	sigma2   float64 // NaN for infeasible rows ("-")
	wopt     float64
	overhead float64
}

// The four published tables for the Hera/XScale configuration
// (Section 4.2 of the paper). Values are truncated by the paper; we
// assert floor equality.
var paperTables = map[float64][]paperRow{
	8: {
		{0.15, 0.4, 1711, 466},
		{0.4, 0.4, 2764, 416},
		{0.6, 0.4, 3639, 674},
		{0.8, 0.4, 4627, 1082},
		{1, 0.4, 5742, 1625},
	},
	3: {
		{0.15, math.NaN(), 0, 0},
		{0.4, 0.4, 2764, 416},
		{0.6, 0.4, 3639, 674},
		{0.8, 0.4, 4627, 1082},
		{1, 0.4, 5742, 1625},
	},
	1.775: {
		{0.15, math.NaN(), 0, 0},
		{0.4, math.NaN(), 0, 0},
		{0.6, 0.8, 4251, 690},
		{0.8, 0.4, 4627, 1082},
		{1, 0.4, 5742, 1625},
	},
	1.4: {
		{0.15, math.NaN(), 0, 0},
		{0.4, math.NaN(), 0, 0},
		{0.6, math.NaN(), 0, 0},
		{0.8, 0.4, 4627, 1082},
		{1, 0.4, 5742, 1625},
	},
}

func heraXScale(t *testing.T) (Params, []float64) {
	t.Helper()
	cfg, ok := platform.ByName("Hera/XScale")
	if !ok {
		t.Fatal("Hera/XScale missing from catalog")
	}
	return FromConfig(cfg), cfg.Processor.Speeds
}

func TestSection42Tables(t *testing.T) {
	p, speeds := heraXScale(t)
	for rho, rows := range paperTables {
		got := p.Sigma1Table(speeds, rho)
		if len(got) != len(rows) {
			t.Fatalf("ρ=%v: %d rows, want %d", rho, len(got), len(rows))
		}
		for i, want := range rows {
			g := got[i]
			if g.Sigma1 != want.sigma1 {
				t.Errorf("ρ=%v row %d: σ1=%g, want %g", rho, i, g.Sigma1, want.sigma1)
			}
			if math.IsNaN(want.sigma2) {
				if g.Feasible {
					t.Errorf("ρ=%v σ1=%g: should be infeasible, got σ2=%g", rho, want.sigma1, g.Sigma2)
				}
				continue
			}
			if !g.Feasible {
				t.Errorf("ρ=%v σ1=%g: should be feasible", rho, want.sigma1)
				continue
			}
			if g.Sigma2 != want.sigma2 {
				t.Errorf("ρ=%v σ1=%g: best σ2=%g, want %g", rho, want.sigma1, g.Sigma2, want.sigma2)
			}
			if math.Floor(g.W) != want.wopt {
				t.Errorf("ρ=%v σ1=%g: Wopt=%.3f, want ⌊W⌋=%g", rho, want.sigma1, g.W, want.wopt)
			}
			if math.Floor(g.EnergyOverhead) != want.overhead {
				t.Errorf("ρ=%v σ1=%g: E/W=%.3f, want ⌊E/W⌋=%g", rho, want.sigma1, g.EnergyOverhead, want.overhead)
			}
		}
	}
}

func TestPaperOptimumRho3(t *testing.T) {
	// The overall best pair at ρ=3 is (0.4, 0.4) — highlighted in bold in
	// the paper — with Wopt=2764 and E/W=416.
	p, speeds := heraXScale(t)
	sol, err := p.Solve(speeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Best.Sigma1 != 0.4 || sol.Best.Sigma2 != 0.4 {
		t.Errorf("best pair (%g,%g), want (0.4,0.4)", sol.Best.Sigma1, sol.Best.Sigma2)
	}
	if math.Floor(sol.Best.W) != 2764 {
		t.Errorf("Wopt = %.3f, want 2764", sol.Best.W)
	}
	if math.Floor(sol.Best.EnergyOverhead) != 416 {
		t.Errorf("E/W = %.3f, want 416", sol.Best.EnergyOverhead)
	}
}

func TestPaperOptimumRho1775UsesTwoSpeeds(t *testing.T) {
	// At ρ=1.775, the global optimum is (0.6, 0.8): a genuinely different
	// re-execution speed — the paper's headline claim.
	p, speeds := heraXScale(t)
	sol, err := p.Solve(speeds, 1.775)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Best.Sigma1 != 0.6 || sol.Best.Sigma2 != 0.8 {
		t.Errorf("best pair (%g,%g), want (0.6,0.8)", sol.Best.Sigma1, sol.Best.Sigma2)
	}
	if sol.Best.Sigma1 == sol.Best.Sigma2 {
		t.Error("optimum should use two different speeds at ρ=1.775")
	}
}

func TestRho8SlowPairFeasibleButSuboptimal(t *testing.T) {
	// The paper notes that at ρ=8 the pair (0.15, 0.15) is feasible but has
	// higher energy overhead than (0.4, 0.4): too-slow speeds cause more
	// errors and re-executions.
	p, _ := heraXScale(t)
	slow := p.evalPair(0.15, 0.15, 8)
	best := p.evalPair(0.4, 0.4, 8)
	if !slow.Feasible {
		t.Fatal("(0.15,0.15) should be feasible at ρ=8")
	}
	if !(slow.EnergyOverhead > best.EnergyOverhead) {
		t.Errorf("(0.15,0.15) E/W=%g should exceed (0.4,0.4) E/W=%g",
			slow.EnergyOverhead, best.EnergyOverhead)
	}
}

func TestInfeasibilityThresholds(t *testing.T) {
	// σ1 = 0.15 requires ρ ≥ 1/0.15 ≈ 6.67 just for the error-free time,
	// so it is infeasible at ρ=3 but feasible at ρ=8.
	p, speeds := heraXScale(t)
	if _, ok := p.BestSecondSpeed(0.15, speeds, 3); ok {
		t.Error("σ1=0.15 must be infeasible at ρ=3")
	}
	if _, ok := p.BestSecondSpeed(0.15, speeds, 8); !ok {
		t.Error("σ1=0.15 must be feasible at ρ=8")
	}
}

func TestSolveInfeasibleBound(t *testing.T) {
	// ρ < 1/σmax = 1 can never be met.
	p, speeds := heraXScale(t)
	if _, err := p.Solve(speeds, 0.9); err != ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
	if _, err := p.SolveSingleSpeed(speeds, 0.9); err != ErrInfeasible {
		t.Errorf("single-speed: want ErrInfeasible, got %v", err)
	}
}

func TestAllCatalogConfigsSolvable(t *testing.T) {
	// Every one of the paper's eight virtual configurations has a solution
	// at the default bound ρ=3.
	for _, cfg := range platform.Configs() {
		p := FromConfig(cfg)
		sol, err := p.Solve(cfg.Processor.Speeds, 3)
		if err != nil {
			t.Errorf("%s: %v", cfg.Name(), err)
			continue
		}
		if sol.Best.W <= 0 || sol.Best.EnergyOverhead <= 0 {
			t.Errorf("%s: degenerate solution %+v", cfg.Name(), sol.Best)
		}
		if sol.Best.TimeOverhead > 3+1e-9 {
			t.Errorf("%s: bound violated: T/W=%g", cfg.Name(), sol.Best.TimeOverhead)
		}
	}
}

func TestTwoSpeedGainAtTightBound(t *testing.T) {
	// At ρ=1.775 on Hera/XScale the single-speed optimum is (0.8,0.8)-ish
	// or worse; two speeds must do strictly better.
	p, speeds := heraXScale(t)
	gain, err := p.TwoSpeedGain(speeds, 1.775)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 0 {
		t.Errorf("two-speed gain = %g, want > 0", gain)
	}
	if gain > 1 {
		t.Errorf("gain = %g should be a fraction", gain)
	}
}

func TestFeasiblePairsSorted(t *testing.T) {
	p, speeds := heraXScale(t)
	sol, err := p.Solve(speeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	fp := sol.FeasiblePairs()
	if len(fp) == 0 {
		t.Fatal("no feasible pairs at ρ=3")
	}
	for i := 1; i < len(fp); i++ {
		if fp[i-1].EnergyOverhead > fp[i].EnergyOverhead {
			t.Errorf("pairs not sorted at %d", i)
		}
	}
	if fp[0].EnergyOverhead != sol.Best.EnergyOverhead {
		t.Error("first feasible pair should be the best")
	}
}

package core_test

import (
	"errors"
	"math"
	"testing"

	"respeed/internal/core"
	"respeed/internal/platform"
)

// bitEq compares float64s by bit pattern so NaN == NaN and +0 ≠ −0:
// PairGrid promises bit-exact agreement with the Params methods, not
// merely numerical closeness.
func bitEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func pairEq(a, b core.PairResult) bool {
	return bitEq(a.Sigma1, b.Sigma1) && bitEq(a.Sigma2, b.Sigma2) &&
		bitEq(a.RhoMin, b.RhoMin) && a.Feasible == b.Feasible &&
		bitEq(a.W, b.W) && bitEq(a.TimeOverhead, b.TimeOverhead) &&
		bitEq(a.EnergyOverhead, b.EnergyOverhead)
}

func checkSolution(t *testing.T, label string, got core.Solution, gotErr error, want core.Solution, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) || (wantErr != nil && !errors.Is(gotErr, core.ErrInfeasible) != !errors.Is(wantErr, core.ErrInfeasible)) {
		t.Fatalf("%s: error mismatch: grid=%v params=%v", label, gotErr, wantErr)
	}
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: pair count %d, want %d", label, len(got.Pairs), len(want.Pairs))
	}
	for i := range want.Pairs {
		if !pairEq(got.Pairs[i], want.Pairs[i]) {
			t.Fatalf("%s: pair %d differs:\n grid   %+v\n params %+v", label, i, got.Pairs[i], want.Pairs[i])
		}
	}
	if !pairEq(got.Best, want.Best) {
		t.Fatalf("%s: best differs:\n grid   %+v\n params %+v", label, got.Best, want.Best)
	}
}

// TestPairGridBitExact sweeps every catalog configuration and a ρ range
// spanning fully-infeasible through comfortably-feasible, asserting the
// precomputed grid reproduces the scalar solver bit for bit.
func TestPairGridBitExact(t *testing.T) {
	for _, cfg := range platform.Configs() {
		p := core.FromConfig(cfg)
		speeds := cfg.Processor.Speeds
		g, err := core.NewPairGrid(p, speeds)
		if err != nil {
			t.Fatalf("%s: NewPairGrid: %v", cfg.Name(), err)
		}
		// ρ from below every pair's ρ_min (infeasible) up to generous
		// slack; include the exact single-speed ρ_min values, where
		// feasibility flips.
		rhos := []float64{0.5, 1, 1.2, 1.5, 2, 3, 5, 8, 15, 40}
		for _, s := range speeds {
			rhos = append(rhos, p.RhoMin(s, s))
		}
		for _, rho := range rhos {
			wantSol, wantErr := p.Solve(speeds, rho)
			gotSol, gotErr := g.Solve(rho)
			checkSolution(t, cfg.Name()+"/Solve", gotSol, gotErr, wantSol, wantErr)

			wantSol, wantErr = p.SolveSingleSpeed(speeds, rho)
			gotSol, gotErr = g.SolveSingleSpeed(rho)
			checkSolution(t, cfg.Name()+"/SolveSingleSpeed", gotSol, gotErr, wantSol, wantErr)

			wantRows := p.Sigma1Table(speeds, rho)
			gotRows := g.Sigma1Table(rho)
			if len(gotRows) != len(wantRows) {
				t.Fatalf("%s: Sigma1Table row count %d, want %d", cfg.Name(), len(gotRows), len(wantRows))
			}
			for i := range wantRows {
				if !pairEq(gotRows[i], wantRows[i]) {
					t.Fatalf("%s: Sigma1Table row %d differs:\n grid   %+v\n params %+v", cfg.Name(), i, gotRows[i], wantRows[i])
				}
			}

			wantGain, wantGainErr := p.TwoSpeedGain(speeds, rho)
			gotGain, gotGainErr := g.TwoSpeedGain(rho)
			if (gotGainErr == nil) != (wantGainErr == nil) || !bitEq(gotGain, wantGain) {
				t.Fatalf("%s: TwoSpeedGain(%g) = (%v, %v), want (%v, %v)", cfg.Name(), rho, gotGain, gotGainErr, wantGain, wantGainErr)
			}
		}
	}
}

// TestPairGridMemoStable asserts repeated solves return identical
// results (the memo must not perturb anything).
func TestPairGridMemoStable(t *testing.T) {
	cfg, _ := platform.ByName(platform.Configs()[0].Name())
	p := core.FromConfig(cfg)
	g, err := core.NewPairGrid(p, cfg.Processor.Speeds)
	if err != nil {
		t.Fatal(err)
	}
	first, err1 := g.Solve(2)
	second, err2 := g.Solve(2)
	if err1 != nil || err2 != nil {
		t.Fatalf("Solve errors: %v, %v", err1, err2)
	}
	if &first.Pairs[0] != &second.Pairs[0] {
		t.Error("memoized Solve should return the cached Pairs slice")
	}
	if !pairEq(first.Best, second.Best) {
		t.Error("memoized Solve changed the best pair")
	}
}

// TestGridFor asserts the process-wide cache hands back the same grid
// for equal (Params, speeds) and distinct grids otherwise.
func TestGridFor(t *testing.T) {
	cfgs := platform.Configs()
	a1, err := core.GridFor(core.FromConfig(cfgs[0]), cfgs[0].Processor.Speeds)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.GridFor(core.FromConfig(cfgs[0]), cfgs[0].Processor.Speeds)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("GridFor returned distinct grids for identical inputs")
	}
	b, err := core.GridFor(core.FromConfig(cfgs[1]), cfgs[1].Processor.Speeds)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == b {
		t.Error("GridFor conflated two different configurations")
	}
	if _, err := core.GridFor(core.FromConfig(cfgs[0]), nil); err == nil {
		t.Error("GridFor with empty speeds should error")
	}
}

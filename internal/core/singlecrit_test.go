package core

import (
	"math"
	"testing"

	"respeed/internal/platform"
)

func TestSolveTimeOptimalPicksFastestSpeeds(t *testing.T) {
	p, speeds := heraXScale(t)
	best, grid := p.SolveTimeOptimal(speeds)
	if best.Sigma1 != 1 || best.Sigma2 != 1 {
		t.Errorf("time optimum at (%g,%g), want (1,1)", best.Sigma1, best.Sigma2)
	}
	if len(grid) != 25 {
		t.Errorf("grid size %d", len(grid))
	}
	for _, g := range grid {
		if g.TimeOverhead < best.TimeOverhead {
			t.Errorf("grid point (%g,%g) beats the reported best", g.Sigma1, g.Sigma2)
		}
	}
}

func TestTimeOptimalMatchesYoungDalyShape(t *testing.T) {
	// With σ1 = σ2 = 1, the time-optimal W is sqrt((C+V)/λ): the
	// silent-error Young/Daly period.
	p, _ := heraXScale(t)
	best, _ := p.SolveTimeOptimal([]float64{1})
	want := math.Sqrt((p.C + p.V) / p.Lambda)
	if math.Abs(best.W-want) > 1e-9*want {
		t.Errorf("W = %g, want %g", best.W, want)
	}
}

func TestSolveEnergyOptimalIsUnconstrainedBiCrit(t *testing.T) {
	// The energy-only optimum must equal BiCrit at a huge ρ.
	p, speeds := heraXScale(t)
	best, grid := p.SolveEnergyOptimal(speeds)
	if len(grid) != 25 {
		t.Errorf("grid size %d", len(grid))
	}
	sol, err := p.Solve(speeds, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if best.Sigma1 != sol.Best.Sigma1 || best.Sigma2 != sol.Best.Sigma2 {
		t.Errorf("energy-only pair (%g,%g) vs unconstrained BiCrit (%g,%g)",
			best.Sigma1, best.Sigma2, sol.Best.Sigma1, sol.Best.Sigma2)
	}
	if math.Abs(best.W-sol.Best.W) > 1e-6*best.W {
		t.Errorf("W %g vs %g", best.W, sol.Best.W)
	}
	if math.Abs(best.EnergyOverhead-sol.Best.EnergyOverhead) > 1e-9*best.EnergyOverhead {
		t.Errorf("E/W %g vs %g", best.EnergyOverhead, sol.Best.EnergyOverhead)
	}
}

func TestEnergyOptimalSlowerThanTimeOptimal(t *testing.T) {
	// The unconstrained energy optimum runs slower (higher T/W) than the
	// time optimum, and the time optimum burns more energy: the trade-off
	// exists.
	p, speeds := heraXScale(t)
	eBest, _ := p.SolveEnergyOptimal(speeds)
	tBest, _ := p.SolveTimeOptimal(speeds)
	if !(eBest.TimeOverhead > tBest.TimeOverhead) {
		t.Errorf("energy optimum T/W %g should exceed time optimum %g",
			eBest.TimeOverhead, tBest.TimeOverhead)
	}
	eAtTimeOpt := p.EnergyOverheadFO(tBest.W, tBest.Sigma1, tBest.Sigma2)
	if !(eAtTimeOpt > eBest.EnergyOverhead) {
		t.Errorf("time optimum E/W %g should exceed energy optimum %g",
			eAtTimeOpt, eBest.EnergyOverhead)
	}
}

func TestParetoFrontierMonotone(t *testing.T) {
	// Along the frontier, relaxing ρ can only decrease (or keep) the
	// optimal energy overhead, and the time overhead stays within ρ.
	p, speeds := heraXScale(t)
	pts := p.ParetoFrontier(speeds, 8, 40)
	if len(pts) < 10 {
		t.Fatalf("frontier has only %d points", len(pts))
	}
	for i, pt := range pts {
		if pt.TimeOverhead > pt.Rho*(1+1e-9) {
			t.Errorf("point %d violates its own bound: T/W=%g > ρ=%g", i, pt.TimeOverhead, pt.Rho)
		}
		if i > 0 && pt.EnergyOverhead > pts[i-1].EnergyOverhead*(1+1e-9) {
			t.Errorf("energy overhead increased along the frontier at %d: %g → %g",
				i, pts[i-1].EnergyOverhead, pt.EnergyOverhead)
		}
	}
	// The frontier must flatten to the unconstrained optimum.
	eBest, _ := p.SolveEnergyOptimal(speeds)
	last := pts[len(pts)-1]
	if math.Abs(last.EnergyOverhead-eBest.EnergyOverhead) > 1e-6*eBest.EnergyOverhead {
		t.Errorf("frontier tail %g does not reach unconstrained optimum %g",
			last.EnergyOverhead, eBest.EnergyOverhead)
	}
}

func TestParetoFrontierStartsAtFeasibilityEdge(t *testing.T) {
	p, speeds := heraXScale(t)
	pts := p.ParetoFrontier(speeds, 8, 30)
	// The first point's ρ must be the minimum ρmin over pairs (nudged).
	rhoLo := math.Inf(1)
	for _, s1 := range speeds {
		for _, s2 := range speeds {
			rhoLo = math.Min(rhoLo, p.RhoMin(s1, s2))
		}
	}
	if math.Abs(pts[0].Rho-rhoLo) > 1e-6*rhoLo {
		t.Errorf("frontier starts at ρ=%g, want ≈ %g", pts[0].Rho, rhoLo)
	}
}

func TestParetoFrontierPanicsOnBadN(t *testing.T) {
	p, speeds := heraXScale(t)
	defer func() {
		if recover() == nil {
			t.Error("n=1 should panic")
		}
	}()
	p.ParetoFrontier(speeds, 8, 1)
}

func TestParetoAcrossConfigs(t *testing.T) {
	for _, cfg := range platform.Configs() {
		p := FromConfig(cfg)
		pts := p.ParetoFrontier(cfg.Processor.Speeds, 6, 20)
		if len(pts) == 0 {
			t.Errorf("%s: empty frontier", cfg.Name())
		}
	}
}

package core

import (
	"math"
	"testing"

	"respeed/internal/mathx"
	"respeed/internal/rngx"
)

func TestPartialPatternValidate(t *testing.T) {
	good := PartialPattern{Segments: 4, Recall: 0.8, PartialCost: 1.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []PartialPattern{
		{Segments: 0, Recall: 0.5, PartialCost: 1},
		{Segments: 2, Recall: -0.1, PartialCost: 1},
		{Segments: 2, Recall: 1.1, PartialCost: 1},
		{Segments: 2, Recall: 0.5, PartialCost: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v should be invalid", bad)
		}
	}
}

// TestPartialReducesToProposition2 is the critical sanity check: with a
// single segment there are no partial verifications, so the extension
// must reproduce the paper's base model exactly.
func TestPartialReducesToProposition2(t *testing.T) {
	p := heraParams()
	pp := PartialPattern{Segments: 1, Recall: 0.9, PartialCost: 5}
	for _, s1 := range []float64{0.4, 0.8} {
		for _, s2 := range []float64{0.4, 1} {
			for _, w := range []float64{500, 2764, 20000} {
				got := p.ExpectedTimePartial(pp, w, s1, s2)
				want := p.ExpectedTime(w, s1, s2)
				if mathx.RelErr(got, want) > 1e-12 {
					t.Errorf("time σ=(%g,%g) W=%g: partial=%g prop2=%g", s1, s2, w, got, want)
				}
				gotE := p.ExpectedEnergyPartial(pp, w, s1, s2)
				wantE := p.ExpectedEnergy(w, s1, s2)
				if mathx.RelErr(gotE, wantE) > 1e-12 {
					t.Errorf("energy σ=(%g,%g) W=%g: partial=%g prop3=%g", s1, s2, w, gotE, wantE)
				}
			}
		}
	}
}

// TestPartialZeroRecallZeroCostIsNeutral: partial checks that never
// detect and cost nothing change nothing regardless of m.
func TestPartialZeroRecallZeroCostIsNeutral(t *testing.T) {
	p := heraParams()
	for _, m := range []int{2, 5, 10} {
		pp := PartialPattern{Segments: m, Recall: 0, PartialCost: 0}
		got := p.ExpectedTimePartial(pp, 2764, 0.4, 0.8)
		want := p.ExpectedTime(2764, 0.4, 0.8)
		if mathx.RelErr(got, want) > 1e-12 {
			t.Errorf("m=%d: neutral checks changed T: %g vs %g", m, got, want)
		}
	}
}

// TestPartialPerfectRecallHelps: free perfect intermediate checks can
// only reduce the expected time (earlier detection, nothing else
// changes).
func TestPartialPerfectRecallHelps(t *testing.T) {
	p := heraParams()
	p.Lambda = 1e-4 // error-rich so detection latency matters
	base := p.ExpectedTime(2764, 0.4, 0.4)
	for _, m := range []int{2, 4, 8} {
		pp := PartialPattern{Segments: m, Recall: 1, PartialCost: 0}
		got := p.ExpectedTimePartial(pp, 2764, 0.4, 0.4)
		if !(got < base) {
			t.Errorf("m=%d: free perfect checks did not help: %g vs %g", m, got, base)
		}
	}
}

// TestPartialMoreSegmentsEarlierDetection: with free perfect checks,
// more segments monotonically reduce expected time.
func TestPartialMoreSegmentsEarlierDetection(t *testing.T) {
	p := heraParams()
	p.Lambda = 1e-4
	prev := math.Inf(1)
	for _, m := range []int{1, 2, 4, 8, 16} {
		pp := PartialPattern{Segments: m, Recall: 1, PartialCost: 0}
		got := p.ExpectedTimePartial(pp, 2764, 0.4, 0.4)
		if got > prev*(1+1e-12) {
			t.Errorf("m=%d: time rose to %g (prev %g)", m, got, prev)
		}
		prev = got
	}
}

// TestPartialExpensiveChecksHurt: costly, useless checks strictly
// increase both time and energy.
func TestPartialExpensiveChecksHurt(t *testing.T) {
	p := heraParams()
	pp := PartialPattern{Segments: 8, Recall: 0, PartialCost: 100}
	if !(p.ExpectedTimePartial(pp, 2764, 0.4, 0.4) > p.ExpectedTime(2764, 0.4, 0.4)) {
		t.Error("costly useless checks should increase time")
	}
	if !(p.ExpectedEnergyPartial(pp, 2764, 0.4, 0.4) > p.ExpectedEnergy(2764, 0.4, 0.4)) {
		t.Error("costly useless checks should increase energy")
	}
}

// TestPartialMonteCarlo validates the summation against a direct
// Monte-Carlo simulation of the partial-verification pattern.
func TestPartialMonteCarlo(t *testing.T) {
	p := heraParams()
	p.Lambda = 2e-4
	pp := PartialPattern{Segments: 4, Recall: 0.7, PartialCost: 3}
	w, s1, s2 := 2764.0, 0.4, 0.8

	rng := rngx.NewStream(42, "partial-mc")
	const n = 60000
	var sum float64
	for rep := 0; rep < n; rep++ {
		total := 0.0
		speed := s1
		for { // attempts
			m := pp.Segments
			seg := w / (float64(m) * speed)
			cp := pp.PartialCost / speed
			cg := p.V / speed
			q := 1 - math.Exp(-p.Lambda*w/(float64(m)*speed))
			corrupted := false
			detected := false
			for k := 1; k <= m && !detected; k++ {
				total += seg
				if !corrupted && rng.Bernoulli(q) {
					corrupted = true
				}
				if k <= m-1 {
					total += cp
					if corrupted && rng.Bernoulli(pp.Recall) {
						detected = true
					}
				} else {
					total += cg
					if corrupted {
						detected = true
					}
				}
			}
			if detected {
				total += p.R
				speed = s2
				continue
			}
			total += p.C
			break
		}
		sum += total
	}
	got := sum / n
	want := p.ExpectedTimePartial(pp, w, s1, s2)
	if mathx.RelErr(got, want) > 0.01 {
		t.Errorf("MC %g vs analytic %g (relerr %g)", got, want, mathx.RelErr(got, want))
	}
}

func TestOptimalSegments(t *testing.T) {
	// With a cheap, high-recall partial check and a high error rate, the
	// optimum uses more than one segment; with a ruinously expensive
	// check it stays at m=1.
	p := heraParams()
	p.Lambda = 3e-4
	cheap := PartialPattern{Recall: 0.9, PartialCost: p.V / 10}
	sol, err := p.OptimalSegments(cheap, 0.6, 0.6, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Pattern.Segments <= 1 {
		t.Errorf("cheap checks: optimal m = %d, want > 1", sol.Pattern.Segments)
	}
	if sol.TimeOverhead > 3*(1+1e-9) {
		t.Errorf("bound violated: %g", sol.TimeOverhead)
	}

	pricey := PartialPattern{Recall: 0.9, PartialCost: p.V * 50}
	sol2, err := p.OptimalSegments(pricey, 0.6, 0.6, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Pattern.Segments != 1 {
		t.Errorf("pricey checks: optimal m = %d, want 1", sol2.Pattern.Segments)
	}

	// The multi-segment optimum beats the base pattern's energy at this
	// error rate.
	if !(sol.EnergyOverhead < sol2.EnergyOverhead) {
		t.Errorf("cheap-check optimum %g should beat base %g", sol.EnergyOverhead, sol2.EnergyOverhead)
	}
}

func TestOptimalSegmentsInfeasible(t *testing.T) {
	p := heraParams()
	tpl := PartialPattern{Recall: 0.5, PartialCost: 1}
	if _, err := p.OptimalSegments(tpl, 0.4, 0.4, 0.5, 8); err != ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
	if _, err := p.OptimalSegments(tpl, 0.4, 0.4, 3, 0); err == nil {
		t.Error("maxM=0 should error")
	}
}

func TestPartialPanicsOnInvalidPattern(t *testing.T) {
	p := heraParams()
	defer func() {
		if recover() == nil {
			t.Error("invalid pattern should panic")
		}
	}()
	p.ExpectedTimePartial(PartialPattern{Segments: 0}, 1000, 0.4, 0.4)
}

package core

import (
	"testing"

	"respeed/internal/platform"
)

func benchParams() (Params, []float64) {
	cfg, _ := platform.ByName("Hera/XScale")
	return FromConfig(cfg), cfg.Processor.Speeds
}

func BenchmarkExpectedTime(b *testing.B) {
	p, _ := benchParams()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = p.ExpectedTime(2764, 0.4, 0.8)
	}
	_ = sink
}

func BenchmarkExpectedEnergy(b *testing.B) {
	p, _ := benchParams()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = p.ExpectedEnergy(2764, 0.4, 0.8)
	}
	_ = sink
}

func BenchmarkOptimalW(b *testing.B) {
	p, _ := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := p.OptimalW(0.4, 0.4, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveGrid(b *testing.B) {
	p, speeds := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(speeds, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSigma1Table(b *testing.B) {
	p, speeds := benchParams()
	for i := 0; i < b.N; i++ {
		if rows := p.Sigma1Table(speeds, 3); len(rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkCombinedRecursion(b *testing.B) {
	p, _ := benchParams()
	cp := p.Split(0.5)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = cp.ExpectedTimeCombined(2764, 0.4, 0.8)
	}
	_ = sink
}

func BenchmarkPartialPattern(b *testing.B) {
	p, _ := benchParams()
	pp := PartialPattern{Segments: 8, Recall: 0.9, PartialCost: 1.5}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = p.ExpectedTimePartial(pp, 2764, 0.4, 0.8)
	}
	_ = sink
}

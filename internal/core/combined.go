package core

import (
	"fmt"
	"math"

	"respeed/internal/mathx"
)

// CombinedParams extends Params with two independent error sources:
// fail-stop errors at rate LambdaF and silent errors at rate LambdaS
// (Section 5 of the paper). Fail-stop errors can strike during
// computation and verification but not during checkpoint or recovery; a
// fail-stop error is detected instantly, a silent error only by the
// end-of-pattern verification.
type CombinedParams struct {
	// LambdaF is the fail-stop error rate (per second).
	LambdaF float64
	// LambdaS is the silent error rate (per second).
	LambdaS float64
	// C, V, R as in Params (seconds; V at full speed).
	C, V, R float64
	// Kappa, Pidle, Pio as in Params (mW).
	Kappa, Pidle, Pio float64
}

// Split builds a CombinedParams from a total error rate λ and the
// fraction f of errors that are fail-stop (the paper's λf = fλ,
// λs = (1−f)λ decomposition in Section 5.2).
func (p Params) Split(f float64) CombinedParams {
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("core: fail-stop fraction %g outside [0,1]", f))
	}
	return CombinedParams{
		LambdaF: f * p.Lambda,
		LambdaS: (1 - f) * p.Lambda,
		C:       p.C, V: p.V, R: p.R,
		Kappa: p.Kappa, Pidle: p.Pidle, Pio: p.Pio,
	}
}

// Lambda returns the total error rate λf + λs.
func (cp CombinedParams) Lambda() float64 { return cp.LambdaF + cp.LambdaS }

// FailStopFraction returns f = λf / (λf + λs).
func (cp CombinedParams) FailStopFraction() float64 {
	return cp.LambdaF / cp.Lambda()
}

func (cp CombinedParams) cpuPower(sigma float64) float64 {
	return cp.Kappa*sigma*sigma*sigma + cp.Pidle
}

func (cp CombinedParams) ioPower() float64 { return cp.Pio + cp.Pidle }

// TimeLost returns Tlost(L, σ): the expected time elapsed before a
// fail-stop error, conditioned on one striking during the execution of L
// work units at speed σ (from [Hérault & Robert 2015], quoted in the
// paper's proof of Proposition 4):
//
//	Tlost = 1/λf − (L/σ) / (e^{λf·L/σ} − 1).
//
// For λf → 0 the value tends to L/(2σ), half the execution, as expected.
func (cp CombinedParams) TimeLost(l, sigma float64) float64 {
	x := cp.LambdaF * l / sigma
	if x < 1e-12 {
		// Series: 1/λ − (L/σ)/(x + x²/2 + …) = (L/σ)·(1/x − 1/(x(1+x/2))) ≈ L/(2σ).
		return l / (2 * sigma) * (1 - x/6)
	}
	return 1/cp.LambdaF - (l/sigma)/mathx.ExpGrowthExcess(x)
}

// probs returns the fail-stop and silent strike probabilities for one
// attempt of the pattern at speed σ: pf over the (W+V)/σ compute+verify
// span, ps over the W/σ compute span.
func (cp CombinedParams) probs(w, sigma float64) (pf, ps float64) {
	pf = mathx.OneMinusExpNeg(cp.LambdaF * (w + cp.V) / sigma)
	ps = mathx.OneMinusExpNeg(cp.LambdaS * w / sigma)
	return pf, ps
}

// expectedTimeSingleCombined solves the single-speed recursion of
// Equation (8) with σ1 = σ2 = σ in closed form:
//
//	T = [pf(Tlost+R) + (1−pf)((W+V)/σ + ps·R + (1−ps)C)] / ((1−pf)(1−ps)).
func (cp CombinedParams) expectedTimeSingleCombined(w, sigma float64) float64 {
	pf, ps := cp.probs(w, sigma)
	tl := cp.TimeLost(w+cp.V, sigma)
	succ := (1 - pf) * (1 - ps)
	num := pf*(tl+cp.R) + (1-pf)*((w+cp.V)/sigma+ps*cp.R+(1-ps)*cp.C)
	return num / succ
}

// ExpectedTimeCombined returns the exact expected pattern time with both
// error sources, first execution at σ1 and re-executions at σ2. It
// evaluates the recursion of Equation (8) directly (whose fixed point for
// the σ2-only tail is solved in closed form); Proposition 4 is the
// expanded version of the same quantity.
func (cp CombinedParams) ExpectedTimeCombined(w, s1, s2 float64) float64 {
	checkArgs(w, s1, s2)
	t2 := cp.expectedTimeSingleCombined(w, s2)
	pf, ps := cp.probs(w, s1)
	tl := cp.TimeLost(w+cp.V, s1)
	return pf*(tl+cp.R+t2) +
		(1-pf)*((w+cp.V)/s1+ps*(cp.R+t2)+(1-ps)*cp.C)
}

// ExpectedTimeCombinedClosedForm evaluates the printed Proposition 4
// formula verbatim.
//
// Reproduction note: the published expression exceeds the direct solution
// of the Equation (8) recursion by exactly one term,
//
//	(1 − e^{−(λf(W+V)+λsW)/σ1}) · e^{λsW/σ2} · V/σ2,
//
// i.e. it books one extra re-executed verification. The test suite pins
// this residual identity to machine precision. ExpectedTimeCombined (the
// recursion) is the ground truth for this repository — it matches the
// execution semantics of Figure 1 and is validated against Monte-Carlo
// simulation — while this function preserves the paper's printed algebra.
func (cp CombinedParams) ExpectedTimeCombinedClosedForm(w, s1, s2 float64) float64 {
	checkArgs(w, s1, s2)
	lf, ls := cp.LambdaF, cp.LambdaS
	mix1 := (lf*(w+cp.V) + ls*w) / s1   // (λf(W+V)+λsW)/σ1
	mix2 := (lf*(w+cp.V) + ls*w) / s2   // (λf(W+V)+λsW)/σ2
	pFail := mathx.OneMinusExpNeg(mix1) // 1 − e^{−mix1}
	return cp.C +
		pFail*math.Exp(mix2)*cp.R +
		pFail*math.Exp(ls*w/s2)*cp.V/s2 +
		1/lf*mathx.OneMinusExpNeg(lf*(w+cp.V)/s1) +
		1/lf*pFail*math.Exp(ls*w/s2)*mathx.ExpGrowthExcess(lf*(w+cp.V)/s2)
}

// expectedEnergySingleCombined solves the single-speed energy recursion
// (the energy analogue of Equation (8)) in closed form.
func (cp CombinedParams) expectedEnergySingleCombined(w, sigma float64) float64 {
	pf, ps := cp.probs(w, sigma)
	tl := cp.TimeLost(w+cp.V, sigma)
	pcal := cp.cpuPower(sigma)
	pio := cp.ioPower()
	succ := (1 - pf) * (1 - ps)
	num := pf*(tl*pcal+cp.R*pio) +
		(1-pf)*((w+cp.V)/sigma*pcal+ps*cp.R*pio+(1-ps)*cp.C*pio)
	return num / succ
}

// ExpectedEnergyCombined returns the exact expected pattern energy with
// both error sources (the quantity expanded in Proposition 5), evaluated
// from the recursion.
func (cp CombinedParams) ExpectedEnergyCombined(w, s1, s2 float64) float64 {
	checkArgs(w, s1, s2)
	e2 := cp.expectedEnergySingleCombined(w, s2)
	pf, ps := cp.probs(w, s1)
	tl := cp.TimeLost(w+cp.V, s1)
	pcal := cp.cpuPower(s1)
	pio := cp.ioPower()
	return pf*(tl*pcal+cp.R*pio+e2) +
		(1-pf)*((w+cp.V)/s1*pcal+ps*(cp.R*pio+e2)+(1-ps)*cp.C*pio)
}

// ExpectedEnergyCombinedClosedForm evaluates the printed Proposition 5
// formula verbatim. Like Proposition 4 it exceeds the recursion by the
// energy of one extra re-executed verification,
// (1 − e^{−mix1})·e^{λsW/σ2}·(V/σ2)·(κσ2³+Pidle); see
// ExpectedTimeCombinedClosedForm.
func (cp CombinedParams) ExpectedEnergyCombinedClosedForm(w, s1, s2 float64) float64 {
	checkArgs(w, s1, s2)
	lf, ls := cp.LambdaF, cp.LambdaS
	mix1 := (lf*(w+cp.V) + ls*w) / s1
	mix2 := (lf*(w+cp.V) + ls*w) / s2
	pFail := mathx.OneMinusExpNeg(mix1)
	p2 := cp.cpuPower(s2)
	return cp.C*cp.ioPower() +
		pFail*math.Exp(mix2)*cp.R*cp.ioPower() +
		pFail*math.Exp(ls*w/s2)*cp.V/s2*p2 +
		1/lf*pFail*math.Exp(ls*w/s2)*mathx.ExpGrowthExcess(lf*(w+cp.V)/s2)*p2 +
		1/lf*mathx.OneMinusExpNeg(lf*(w+cp.V)/s1)*cp.cpuPower(s1)
}

// TimeOverheadCombinedFO returns the first-order time overhead of
// Proposition 6 (Equation 9). With f the fail-stop fraction and
// s = 1 − f:
//
//	T/W = (C+V/σ1)/W + ((f+s)/(σ1σ2) − f/(2σ1²))·λW
//	    + ((f+s)λ(R+V/σ2) + 1 − fλV/σ1)/σ1 + O(λ²W).
func (cp CombinedParams) TimeOverheadCombinedFO(w, s1, s2 float64) float64 {
	checkArgs(w, s1, s2)
	lambda := cp.Lambda()
	f := cp.FailStopFraction()
	s := 1 - f
	zw := ((f+s)/(s1*s2) - f/(2*s1*s1)) * lambda
	x := (cp.C + cp.V/s1) / w
	y := ((f+s)*lambda*(cp.R+cp.V/s2) + 1 - f*lambda*cp.V/s1) / s1
	return x + zw*w + y
}

// EnergyOverheadCombinedFO returns the first-order energy overhead of
// Proposition 6 (Equation 10).
func (cp CombinedParams) EnergyOverheadCombinedFO(w, s1, s2 float64) float64 {
	checkArgs(w, s1, s2)
	lambda := cp.Lambda()
	f := cp.FailStopFraction()
	s := 1 - f
	p1 := cp.cpuPower(s1)
	p2 := cp.cpuPower(s2)
	x := (cp.C*cp.ioPower() + cp.V*p1/s1) / w
	zw := ((f+s)*p2/(s1*s2) - f*p1/(2*s1*s1)) * lambda
	y := (f+s)*lambda*(cp.R*cp.ioPower()+cp.V*p2/s2)/s1 +
		(1-f*lambda*cp.V/s1)*p1/s1
	return x + zw*w + y
}

// SpeedRatioWindow returns the interval (lo, hi) of admissible ratios
// σ2/σ1 for which the first-order approximation yields a valid BiCrit
// solution (Section 5.2): the time coefficient requires
// σ2/σ1 < 2(1+s/f), and with Pidle = 0 the energy coefficient requires
// σ2/σ1 > (2(1+s/f))^{-1/2}. For f = 0 (silent errors only) the window
// is (0, +Inf): the classical regime with no restriction.
func (cp CombinedParams) SpeedRatioWindow() (lo, hi float64) {
	f := cp.FailStopFraction()
	if f == 0 {
		return 0, math.Inf(1)
	}
	s := 1 - f
	hi = 2 * (1 + s/f)
	lo = 1 / math.Sqrt(hi)
	return lo, hi
}

// TimeCoefficientPositive reports whether the λW coefficient of
// Equation (9) is strictly positive for the given speeds, i.e. whether
// the first-order time overhead has a finite minimizer.
func (cp CombinedParams) TimeCoefficientPositive(s1, s2 float64) bool {
	f := cp.FailStopFraction()
	s := 1 - f
	return (f+s)/(s1*s2)-f/(2*s1*s1) > 0
}

// EnergyCoefficientPositive reports whether the λW coefficient of
// Equation (10) is strictly positive for the given speeds (the general
// form, valid for any Pidle).
func (cp CombinedParams) EnergyCoefficientPositive(s1, s2 float64) bool {
	f := cp.FailStopFraction()
	s := 1 - f
	return (f+s)*cp.cpuPower(s2)/(s1*s2)-f*cp.cpuPower(s1)/(2*s1*s1) > 0
}

package cluster

import (
	"fmt"
	"math"
	"testing"
)

// Golden equivalence tests: pinned against the pre-engine cluster
// simulator at fixed seeds. The engine refactor must reproduce the
// per-node DES sampling, combined compute+verify energy billing, and
// per-node error attribution bit-for-bit.

func wantBits(t *testing.T, name string, got float64, want string) {
	t.Helper()
	g := fmt.Sprintf("0x%016x", math.Float64bits(got))
	if g != want {
		t.Errorf("%s: got %s (%v), want %s", name, g, got, want)
	}
}

func goldenConfig() Config {
	cfg, _ := heraCluster(4, 150)
	cfg.Nodes = Uniform(4, cfg.Nodes[0].SilentRate*4, 2e-5)
	return cfg
}

func TestGoldenSim(t *testing.T) {
	s, err := NewSim(goldenConfig(), 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		s.RunPattern()
	}
	st := s.Stats()
	wantBits(t, "clock", s.Clock(), "0x41605c8b69f60017")
	wantBits(t, "energy", s.Energy(), "0x41f46254e9a5201d")
	if st.Patterns != 300 || st.Attempts != 2089 || st.Silent != 1620 || st.FailStops != 169 {
		t.Errorf("counters: %+v", st)
	}
	wantPerNode := []int{463, 444, 445, 437}
	for i, w := range wantPerNode {
		if st.PerNodeErrors[i] != w {
			t.Errorf("perNode[%d]: got %d, want %d", i, st.PerNodeErrors[i], w)
		}
	}
}

func TestGoldenReplicate(t *testing.T) {
	est, err := Replicate(goldenConfig(), 201, 300)
	if err != nil {
		t.Fatal(err)
	}
	wantBits(t, "time.mean", est.Time.Mean, "0x40dc3252b336c955")
	wantBits(t, "time.stddev", est.Time.StdDev, "0x40d27e18758ba316")
	wantBits(t, "energy.mean", est.Energy.Mean, "0x41719df7294d4553")
	wantBits(t, "meanAttempts", est.MeanAttempts, "0x401c0a3d70a3d70a")
}

package cluster

import (
	"math"
	"testing"

	"respeed/internal/core"
	"respeed/internal/energy"
	"respeed/internal/platform"
	"respeed/internal/sim"
)

func heraCluster(nodes int, boost float64) (Config, core.Params) {
	cfg, _ := platform.ByName("Hera/XScale")
	p := core.FromConfig(cfg)
	p.Lambda *= boost
	c := Config{
		Nodes: Uniform(nodes, p.Lambda, 0),
		Plan:  sim.Plan{W: 2764, Sigma1: 0.4, Sigma2: 0.8},
		Costs: sim.Costs{C: p.C, V: p.V, R: p.R},
		Model: energy.Model{Kappa: p.Kappa, Pidle: p.Pidle, Pio: p.Pio},
	}
	return c, p
}

func TestUniformSplit(t *testing.T) {
	nodes := Uniform(8, 8e-4, 4e-4)
	if len(nodes) != 8 {
		t.Fatalf("nodes %d", len(nodes))
	}
	var silent, fail, share float64
	for _, n := range nodes {
		silent += n.SilentRate
		fail += n.FailStopRate
		share += n.SpeedShare
	}
	if math.Abs(silent-8e-4) > 1e-18 || math.Abs(fail-4e-4) > 1e-18 {
		t.Errorf("rates don't sum: %g, %g", silent, fail)
	}
	if math.Abs(share-1) > 1e-12 {
		t.Errorf("shares sum to %g", share)
	}
}

func TestValidate(t *testing.T) {
	good, _ := heraCluster(4, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Nodes = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty node list should fail")
	}
	bad = good
	bad.Costs.LambdaS = 1e-6
	if err := bad.Validate(); err == nil {
		t.Error("platform-level rates should be rejected")
	}
	bad = good
	bad.Nodes = Uniform(4, 1e-6, 0)
	bad.Nodes[0].SpeedShare = 0.5 // shares no longer sum to 1
	if err := bad.Validate(); err == nil {
		t.Error("bad speed shares should fail")
	}
	bad = good
	bad.Nodes = Uniform(2, 1e-6, 0)
	bad.Nodes[1].SilentRate = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative node rate should fail")
	}
}

// TestAggregationTheorem is the package's reason to exist: a cluster of
// N nodes with per-node rate λ/N must match the single-machine
// aggregate-model expectation (Proposition 2 with rate λ), because the
// union of independent Poisson processes is a Poisson process with the
// summed rate.
func TestAggregationTheorem(t *testing.T) {
	for _, nodes := range []int{1, 4, 32} {
		cfg, p := heraCluster(nodes, 100)
		est, err := Replicate(cfg, 42, 30000)
		if err != nil {
			t.Fatal(err)
		}
		want := p.ExpectedTime(cfg.Plan.W, cfg.Plan.Sigma1, cfg.Plan.Sigma2)
		if d := math.Abs(est.Time.Mean - want); d > 4*est.Time.StdErr {
			t.Errorf("%d nodes: cluster mean %g vs aggregate %g (Δ=%g, 4se=%g)",
				nodes, est.Time.Mean, want, d, 4*est.Time.StdErr)
		}
		wantE := p.ExpectedEnergy(cfg.Plan.W, cfg.Plan.Sigma1, cfg.Plan.Sigma2)
		if d := math.Abs(est.Energy.Mean - wantE); d > 4*est.Energy.StdErr {
			t.Errorf("%d nodes: cluster energy %g vs aggregate %g", nodes, est.Energy.Mean, wantE)
		}
	}
}

func TestAggregationWithFailStop(t *testing.T) {
	// Same theorem with both error sources, against the Section 5
	// recursion.
	cfg, p := heraCluster(8, 100)
	cp := p.Split(0.4)
	for i := range cfg.Nodes {
		cfg.Nodes[i].SilentRate = cp.LambdaS / float64(len(cfg.Nodes))
		cfg.Nodes[i].FailStopRate = cp.LambdaF / float64(len(cfg.Nodes))
	}
	est, err := Replicate(cfg, 7, 30000)
	if err != nil {
		t.Fatal(err)
	}
	want := cp.ExpectedTimeCombined(cfg.Plan.W, cfg.Plan.Sigma1, cfg.Plan.Sigma2)
	if d := math.Abs(est.Time.Mean - want); d > 4*est.Time.StdErr {
		t.Errorf("cluster %g vs combined recursion %g (Δ=%g, 4se=%g)",
			est.Time.Mean, want, d, 4*est.Time.StdErr)
	}
}

func TestPerNodeErrorBalance(t *testing.T) {
	// Identical nodes must absorb statistically equal error counts.
	cfg, _ := heraCluster(4, 300)
	s, err := NewSim(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		s.RunPattern()
	}
	st := s.Stats()
	total := 0
	for _, c := range st.PerNodeErrors {
		total += c
	}
	if total == 0 {
		t.Fatal("no errors recorded")
	}
	want := float64(total) / float64(len(st.PerNodeErrors))
	for i, c := range st.PerNodeErrors {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("node %d absorbed %d errors, want ≈ %.0f", i, c, want)
		}
	}
	if st.Patterns != 20000 {
		t.Errorf("patterns %d", st.Patterns)
	}
	if st.Silent != total {
		t.Errorf("silent %d vs per-node sum %d", st.Silent, total)
	}
}

func TestHeterogeneousRates(t *testing.T) {
	// One flaky node carrying most of the error rate must absorb most of
	// the errors.
	cfg, p := heraCluster(4, 300)
	lam := p.Lambda
	cfg.Nodes[0].SilentRate = lam * 0.7
	for i := 1; i < 4; i++ {
		cfg.Nodes[i].SilentRate = lam * 0.1
	}
	s, err := NewSim(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		s.RunPattern()
	}
	st := s.Stats()
	total := 0
	for _, c := range st.PerNodeErrors {
		total += c
	}
	if total == 0 {
		t.Fatal("no errors")
	}
	frac := float64(st.PerNodeErrors[0]) / float64(total)
	if math.Abs(frac-0.7) > 0.05 {
		t.Errorf("flaky node absorbed %.2f of errors, want ≈ 0.70", frac)
	}
}

func TestClusterDeterminism(t *testing.T) {
	cfg, _ := heraCluster(4, 100)
	a, err := Replicate(cfg, 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replicate(cfg, 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time.Mean != b.Time.Mean {
		t.Error("same-seed cluster runs differ")
	}
}

func TestReplicateRejectsBadN(t *testing.T) {
	cfg, _ := heraCluster(2, 1)
	if _, err := Replicate(cfg, 1, 0); err == nil {
		t.Error("n=0 should be rejected")
	}
}

// Package cluster models the platform the paper abstracts away: N nodes
// executing a divisible-load pattern in parallel, each subject to its
// own silent and fail-stop error processes. The paper treats "the
// platform" as one machine with an aggregated speed and a single
// aggregated error rate λ; this package simulates the node-level reality
// on a discrete-event engine and lets the test suite verify the
// aggregation argument: N independent per-node Poisson error processes
// of rate λ/N are statistically indistinguishable (at pattern
// granularity) from one aggregate process of rate λ, because a pattern
// fails as soon as ANY node is struck.
package cluster

import (
	"fmt"
	"math"

	"respeed/internal/des"
	"respeed/internal/energy"
	"respeed/internal/rngx"
	"respeed/internal/sim"
	"respeed/internal/stats"
)

// Node is one machine of the cluster.
type Node struct {
	// ID names the node.
	ID int
	// SilentRate and FailStopRate are this node's error rates (per
	// second of wall-clock while the node is computing).
	SilentRate, FailStopRate float64
	// SpeedShare is the node's fraction of the aggregate speed; shares
	// must sum to 1.
	SpeedShare float64
}

// Config describes a cluster execution.
type Config struct {
	// Nodes is the machine list. Speed shares must sum to ≈1.
	Nodes []Node
	// Plan is the pattern policy in aggregate terms: W work units at
	// aggregate speed σ1/σ2, exactly as in the paper.
	Plan sim.Plan
	// Costs are the platform-level resilience costs; per-node error
	// rates live on the nodes, so Costs.LambdaS/LambdaF must be zero.
	Costs sim.Costs
	// Model prices aggregate energy (the paper's platform-level κ, Pidle,
	// Pio).
	Model energy.Model
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: need at least one node")
	}
	if err := c.Plan.Validate(); err != nil {
		return err
	}
	if c.Costs.LambdaS != 0 || c.Costs.LambdaF != 0 {
		return fmt.Errorf("cluster: error rates belong on nodes, not Costs")
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	var share float64
	for _, n := range c.Nodes {
		if n.SilentRate < 0 || n.FailStopRate < 0 {
			return fmt.Errorf("cluster: node %d has negative rates", n.ID)
		}
		if n.SpeedShare <= 0 {
			return fmt.Errorf("cluster: node %d has non-positive speed share", n.ID)
		}
		share += n.SpeedShare
	}
	if math.Abs(share-1) > 1e-9 {
		return fmt.Errorf("cluster: speed shares sum to %g, want 1", share)
	}
	return nil
}

// Uniform builds n identical nodes that together provide the aggregate
// speed, with the platform rates split evenly — the decomposition the
// paper's aggregate model implies.
func Uniform(n int, totalSilentRate, totalFailStopRate float64) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			ID:           i,
			SilentRate:   totalSilentRate / float64(n),
			FailStopRate: totalFailStopRate / float64(n),
			SpeedShare:   1 / float64(n),
		}
	}
	return nodes
}

// Sim executes patterns on the cluster. Not safe for concurrent use.
type Sim struct {
	cfg    Config
	rngs   []*rngx.Stream
	engine des.Engine
	clock  float64
	joules float64

	patterns  int
	attempts  int
	silent    int
	failstops int
	// perNodeErrors counts errors by node for balance checks.
	perNodeErrors []int
}

// NewSim builds a cluster simulator; each node gets an independent
// substream of seed.
func NewSim(cfg Config, seed uint64) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, perNodeErrors: make([]int, len(cfg.Nodes))}
	s.rngs = make([]*rngx.Stream, len(cfg.Nodes))
	for i := range cfg.Nodes {
		s.rngs[i] = rngx.NewStream(seed, fmt.Sprintf("cluster/node-%d", i))
	}
	return s, nil
}

// Clock returns the simulation time; Energy the consumed energy.
func (s *Sim) Clock() float64  { return s.clock }
func (s *Sim) Energy() float64 { return s.joules }

// attemptOutcome is what the DES pass over one attempt window decides.
type attemptOutcome struct {
	failStopAt float64 // +Inf if none
	failNode   int
	silentHit  bool
	silentNode int
}

// sampleAttempt schedules every node's next silent and fail-stop
// arrivals on the engine and runs it over the attempt window, returning
// the earliest fail-stop (which preempts) and whether any silent error
// struck before it within the compute span.
//
// Silent errors only matter during the compute span; fail-stop errors
// can strike through compute+verify (the paper's Section 5 assumption).
func (s *Sim) sampleAttempt(computeDur, verifyDur float64) attemptOutcome {
	out := attemptOutcome{failStopAt: math.Inf(1), failNode: -1, silentNode: -1}
	span := computeDur + verifyDur
	start := s.engine.Now()
	for i, node := range s.cfg.Nodes {
		i, node := i, node
		if node.FailStopRate > 0 {
			if d := s.rngs[i].Exp(node.FailStopRate); d < span {
				s.engine.Schedule(d, func(e *des.Engine) {
					at := e.Now() - start
					if at < out.failStopAt {
						out.failStopAt = at
						out.failNode = i
					}
				})
			}
		}
		if node.SilentRate > 0 {
			if d := s.rngs[i].Exp(node.SilentRate); d < computeDur {
				s.engine.Schedule(d, func(e *des.Engine) {
					// Record the first silent strike; whether it matters is
					// resolved by the caller (a fail-stop anywhere in the
					// window preempts the attempt regardless).
					if !out.silentHit {
						out.silentHit = true
						out.silentNode = i
					}
				})
			}
		}
	}
	s.engine.RunUntil(start + span)
	return out
}

// RunPattern executes one pattern to its committed checkpoint, exactly
// mirroring sim.PatternSim's semantics but with node-level error
// processes.
func (s *Sim) RunPattern() sim.PatternResult {
	var res sim.PatternResult
	startClock, startJoules := s.clock, s.joules
	for attempt := 0; ; attempt++ {
		res.Attempts++
		sigma := s.cfg.Plan.Sigma1
		if attempt > 0 {
			sigma = s.cfg.Plan.Sigma2
		}
		computeDur := s.cfg.Plan.W / sigma
		verifyDur := s.cfg.Costs.V / sigma

		// Synchronize the DES clock with the wall clock.
		if s.engine.Now() < s.clock {
			s.engine.RunUntil(s.clock)
		}
		out := s.sampleAttempt(computeDur, verifyDur)

		if out.failStopAt < computeDur+verifyDur {
			// Fail-stop preempts the attempt at its arrival.
			s.advance(out.failStopAt, energy.Compute, sigma)
			res.FailStopErrors++
			s.failstops++
			s.perNodeErrors[out.failNode]++
			s.advance(s.cfg.Costs.R, energy.Recovery, 0)
			continue
		}
		silent := out.silentHit && out.failStopAt == math.Inf(1)
		s.advance(computeDur+verifyDur, energy.Compute, sigma)
		if silent {
			res.SilentErrors++
			s.silent++
			s.perNodeErrors[out.silentNode]++
			s.advance(s.cfg.Costs.R, energy.Recovery, 0)
			continue
		}
		s.advance(s.cfg.Costs.C, energy.Checkpoint, 0)
		res.Time = s.clock - startClock
		res.Energy = s.joules - startJoules
		s.patterns++
		s.attempts += res.Attempts
		return res
	}
}

// advance moves the wall clock and bills platform-level energy.
func (s *Sim) advance(dur float64, act energy.Activity, sigma float64) {
	s.clock += dur
	switch act {
	case energy.Compute, energy.Verify:
		s.joules += s.cfg.Model.ComputeEnergy(dur, sigma)
	case energy.Checkpoint, energy.Recovery:
		s.joules += s.cfg.Model.IOEnergy(dur)
	default:
		s.joules += s.cfg.Model.IdleEnergy(dur)
	}
}

// Stats summarizes cluster activity.
type Stats struct {
	Patterns, Attempts int
	Silent, FailStops  int
	PerNodeErrors      []int
}

// Stats returns the counters. The PerNodeErrors slice is a copy.
func (s *Sim) Stats() Stats {
	return Stats{
		Patterns: s.patterns, Attempts: s.attempts,
		Silent: s.silent, FailStops: s.failstops,
		PerNodeErrors: append([]int(nil), s.perNodeErrors...),
	}
}

// Replicate runs n patterns and aggregates, mirroring sim.Replicate.
func Replicate(cfg Config, seed uint64, n int) (sim.Estimate, error) {
	if n < 1 {
		return sim.Estimate{}, fmt.Errorf("cluster: replication count must be ≥ 1")
	}
	s, err := NewSim(cfg, seed)
	if err != nil {
		return sim.Estimate{}, err
	}
	var tw, ew, tpw, epw stats.Welford
	attempts := 0
	for i := 0; i < n; i++ {
		r := s.RunPattern()
		tw.Add(r.Time)
		ew.Add(r.Energy)
		tpw.Add(r.Time / cfg.Plan.W)
		epw.Add(r.Energy / cfg.Plan.W)
		attempts += r.Attempts
	}
	return sim.Estimate{
		Time:          tw.Summarize(),
		Energy:        ew.Summarize(),
		TimePerWork:   tpw.Summarize(),
		EnergyPerWork: epw.Summarize(),
		MeanAttempts:  float64(attempts) / float64(n),
		Patterns:      n,
	}, nil
}

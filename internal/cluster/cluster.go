// Package cluster models the platform the paper abstracts away: N nodes
// executing a divisible-load pattern in parallel, each subject to its
// own silent and fail-stop error processes. The paper treats "the
// platform" as one machine with an aggregated speed and a single
// aggregated error rate λ; this package simulates the node-level reality
// on a discrete-event engine and lets the test suite verify the
// aggregation argument: N independent per-node Poisson error processes
// of rate λ/N are statistically indistinguishable (at pattern
// granularity) from one aggregate process of rate λ, because a pattern
// fails as soon as ANY node is struck.
//
// Since the engine unification this package is a thin façade over
// internal/engine: Sim is engine.PatternEngine configured with
// engine.PerNodeFaults and the cluster's combined compute+verify
// billing.
package cluster

import (
	"fmt"

	"respeed/internal/energy"
	"respeed/internal/engine"
	"respeed/internal/sim"
)

// Node is one machine of the cluster.
type Node = engine.Node

// Config describes a cluster execution.
type Config struct {
	// Nodes is the machine list. Speed shares must sum to ≈1.
	Nodes []Node
	// Plan is the pattern policy in aggregate terms: W work units at
	// aggregate speed σ1/σ2, exactly as in the paper.
	Plan sim.Plan
	// Costs are the platform-level resilience costs; per-node error
	// rates live on the nodes, so Costs.LambdaS/LambdaF must be zero.
	Costs sim.Costs
	// Model prices aggregate energy (the paper's platform-level κ, Pidle,
	// Pio).
	Model energy.Model
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Plan.Validate(); err != nil {
		return err
	}
	if c.Costs.LambdaS != 0 || c.Costs.LambdaF != 0 {
		return fmt.Errorf("cluster: error rates belong on nodes, not Costs")
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	return engine.ValidateNodes(c.Nodes)
}

// Uniform builds n identical nodes that together provide the aggregate
// speed, with the platform rates split evenly — the decomposition the
// paper's aggregate model implies.
func Uniform(n int, totalSilentRate, totalFailStopRate float64) []Node {
	return engine.UniformNodes(n, totalSilentRate, totalFailStopRate)
}

// Sim executes patterns on the cluster. Not safe for concurrent use.
type Sim struct {
	eng    *engine.PatternEngine
	faults *engine.PerNodeFaults

	patterns  int
	attempts  int
	silent    int
	failstops int
}

// NewSim builds a cluster simulator; each node gets an independent
// substream of seed.
func NewSim(cfg Config, seed uint64) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fp, err := engine.NewPerNodeFaults(cfg.Nodes, seed, "cluster")
	if err != nil {
		return nil, err
	}
	eng, err := engine.NewPatternEngine(engine.PatternConfig{
		Plan:     cfg.Plan,
		Costs:    cfg.Costs,
		Faults:   fp,
		Recorder: engine.NewSumRecorder(cfg.Model),
		// Platform-level billing: compute+verify is one aggregate
		// Compute segment (the historical cluster accounting).
		CombineVerify: true,
	})
	if err != nil {
		return nil, err
	}
	return &Sim{eng: eng, faults: fp}, nil
}

// Clock returns the simulation time; Energy the consumed energy.
func (s *Sim) Clock() float64  { return s.eng.Clock() }
func (s *Sim) Energy() float64 { return s.eng.Energy() }

// RunPattern executes one pattern to its committed checkpoint, exactly
// mirroring sim.PatternSim's semantics but with node-level error
// processes.
func (s *Sim) RunPattern() sim.PatternResult {
	res := s.eng.RunPattern()
	s.patterns++
	s.attempts += res.Attempts
	s.silent += res.SilentErrors
	s.failstops += res.FailStopErrors
	return res
}

// Stats summarizes cluster activity.
type Stats struct {
	Patterns, Attempts int
	Silent, FailStops  int
	PerNodeErrors      []int
}

// Stats returns the counters. The PerNodeErrors slice is a copy.
func (s *Sim) Stats() Stats {
	return Stats{
		Patterns: s.patterns, Attempts: s.attempts,
		Silent: s.silent, FailStops: s.failstops,
		PerNodeErrors: s.faults.PerNodeErrors(),
	}
}

// Replicate runs n patterns and aggregates, mirroring sim.Replicate.
func Replicate(cfg Config, seed uint64, n int) (sim.Estimate, error) {
	if n < 1 {
		return sim.Estimate{}, fmt.Errorf("cluster: replication count must be ≥ 1")
	}
	s, err := NewSim(cfg, seed)
	if err != nil {
		return sim.Estimate{}, err
	}
	return engine.ReplicatePattern(s.eng, cfg.Plan.W, n)
}

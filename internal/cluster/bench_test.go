package cluster

import "testing"

func BenchmarkClusterPattern16Nodes(b *testing.B) {
	cfg, _ := heraCluster(16, 100)
	s, err := NewSim(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunPattern()
	}
}

package optimize

import (
	"math"

	"respeed/internal/core"
	"respeed/internal/mathx"
)

// CombinedResult is the numeric BiCrit solution under both error
// sources for one speed pair.
type CombinedResult struct {
	Sigma1, Sigma2               float64
	Feasible                     bool
	W                            float64
	TimeOverhead, EnergyOverhead float64
}

// CombinedPair solves the BiCrit problem for one speed pair under both
// fail-stop and silent errors, using the exact Equation (8) recursion
// expectations. The paper stops at first-order approximations whose
// validity is restricted to a window of σ2/σ1 (Section 5.2) and leaves
// the general case as future work ("it seems that new methods are needed
// to capture the general case"); the numeric route here has no such
// restriction — it works for every speed pair, which is exactly why it
// earns its place next to the closed forms.
func CombinedPair(cp core.CombinedParams, s1, s2, rho float64) CombinedResult {
	res := CombinedResult{Sigma1: s1, Sigma2: s2}
	timeOH := func(w float64) float64 {
		return cp.ExpectedTimeCombined(w, s1, s2) / w
	}
	energyOH := func(w float64) float64 {
		return cp.ExpectedEnergyCombined(w, s1, s2) / w
	}

	// Seed from the silent-only time-optimal size (same order of
	// magnitude for any error mix).
	silent := core.Params{Lambda: cp.Lambda(), C: cp.C, V: cp.V, R: cp.R,
		Kappa: cp.Kappa, Pidle: cp.Pidle, Pio: cp.Pio}
	seed := silent.WTime(s1, s2)
	if !(seed > 0) || math.IsInf(seed, 0) {
		seed = 1
	}

	wt, err := mathx.MinimizeConvex1D(timeOH, seed, 1e-10)
	if err != nil || timeOH(wt) > rho {
		return res
	}
	lo := wt
	for timeOH(lo) <= rho && lo > 1e-12 {
		lo /= 2
	}
	hi := wt
	for timeOH(hi) <= rho && hi < 1e18 {
		hi *= 2
	}
	f := func(w float64) float64 { return timeOH(w) - rho }
	w1, err1 := mathx.BrentRoot(f, lo, wt, 1e-9*wt)
	if err1 != nil {
		w1 = lo
	}
	w2, err2 := mathx.BrentRoot(f, wt, hi, 1e-9*wt)
	if err2 != nil {
		w2 = hi
	}
	wBest := w1
	if w2 > w1 {
		wInt, err := mathx.BrentMin(energyOH, w1, w2, 1e-12)
		if err == nil {
			wBest = wInt
		}
		for _, cand := range []float64{w1, w2} {
			if energyOH(cand) < energyOH(wBest) {
				wBest = cand
			}
		}
	}
	res.Feasible = true
	res.W = wBest
	res.TimeOverhead = timeOH(wBest)
	res.EnergyOverhead = energyOH(wBest)
	return res
}

// SolveCombined runs CombinedPair over all speed pairs and returns the
// energy-minimizing feasible result plus the grid. It returns
// core.ErrInfeasible when no pair meets the bound.
func SolveCombined(cp core.CombinedParams, speeds []float64, rho float64) (CombinedResult, []CombinedResult, error) {
	grid := make([]CombinedResult, 0, len(speeds)*len(speeds))
	bestIdx := -1
	for _, s1 := range speeds {
		for _, s2 := range speeds {
			r := CombinedPair(cp, s1, s2, rho)
			grid = append(grid, r)
			if !r.Feasible {
				continue
			}
			if bestIdx < 0 || r.EnergyOverhead < grid[bestIdx].EnergyOverhead {
				bestIdx = len(grid) - 1
			}
		}
	}
	if bestIdx < 0 {
		return CombinedResult{}, grid, core.ErrInfeasible
	}
	return grid[bestIdx], grid, nil
}

// SolveCombinedSingleSpeed restricts SolveCombined to σ2 = σ1.
func SolveCombinedSingleSpeed(cp core.CombinedParams, speeds []float64, rho float64) (CombinedResult, []CombinedResult, error) {
	grid := make([]CombinedResult, 0, len(speeds))
	bestIdx := -1
	for _, s := range speeds {
		r := CombinedPair(cp, s, s, rho)
		grid = append(grid, r)
		if !r.Feasible {
			continue
		}
		if bestIdx < 0 || r.EnergyOverhead < grid[bestIdx].EnergyOverhead {
			bestIdx = len(grid) - 1
		}
	}
	if bestIdx < 0 {
		return CombinedResult{}, grid, core.ErrInfeasible
	}
	return grid[bestIdx], grid, nil
}

package optimize

import (
	"math"
	"testing"

	"respeed/internal/core"
	"respeed/internal/mathx"
	"respeed/internal/platform"
)

func heraXScale() (core.Params, []float64) {
	cfg, _ := platform.ByName("Hera/XScale")
	return core.FromConfig(cfg), cfg.Processor.Speeds
}

func atlasCrusoe() (core.Params, []float64) {
	cfg, _ := platform.ByName("Atlas/Crusoe")
	return core.FromConfig(cfg), cfg.Processor.Speeds
}

func TestExactPairRespectsBound(t *testing.T) {
	p, speeds := heraXScale()
	for _, rho := range []float64{1.4, 1.775, 3, 8} {
		for _, s1 := range speeds {
			for _, s2 := range speeds {
				r := ExactPair(p, s1, s2, rho)
				if !r.Feasible {
					continue
				}
				if r.TimeOverhead > rho*(1+1e-7) {
					t.Errorf("ρ=%g σ=(%g,%g): exact T/W=%g violates bound",
						rho, s1, s2, r.TimeOverhead)
				}
				if !(r.WLo <= r.W && r.W <= r.WHi) {
					t.Errorf("ρ=%g σ=(%g,%g): W=%g outside window [%g,%g]",
						rho, s1, s2, r.W, r.WLo, r.WHi)
				}
			}
		}
	}
}

func TestExactAgreesWithTheorem1(t *testing.T) {
	// The first-order closed form (Theorem 1) and the exact numeric
	// optimum must agree closely in the λW ≪ 1 regime: within 2% on W and
	// 0.5% on the energy overhead.
	p, speeds := heraXScale()
	for _, rho := range []float64{1.775, 3, 8} {
		for _, s1 := range speeds {
			for _, s2 := range speeds {
				wFO, err := p.OptimalW(s1, s2, rho)
				exact := ExactPair(p, s1, s2, rho)
				if (err == nil) != exact.Feasible {
					// Feasibility may flip only within a hair of ρmin.
					if math.Abs(p.RhoMin(s1, s2)-rho) > 1e-3*rho {
						t.Errorf("ρ=%g σ=(%g,%g): FO feasible=%v exact=%v",
							rho, s1, s2, err == nil, exact.Feasible)
					}
					continue
				}
				if err != nil {
					continue
				}
				// The energy curve is flat near its minimum, so W may move
				// noticeably (especially for slow σ2, where λW/σ2 is no
				// longer tiny) while the objective barely changes: allow
				// 10% on W but hold the objective to 0.5%.
				if mathx.RelErr(wFO, exact.W) > 0.10 {
					t.Errorf("ρ=%g σ=(%g,%g): W FO=%g exact=%g", rho, s1, s2, wFO, exact.W)
				}
				eFO := p.EnergyOverheadFO(wFO, s1, s2)
				if mathx.RelErr(eFO, exact.EnergyOverhead) > 0.005 {
					t.Errorf("ρ=%g σ=(%g,%g): E/W FO=%g exact=%g",
						rho, s1, s2, eFO, exact.EnergyOverhead)
				}
			}
		}
	}
}

func TestSolveBestPairMatchesClosedForm(t *testing.T) {
	// The exact solver must select the same winning speed pair as the
	// paper's procedure at the published operating points.
	p, speeds := heraXScale()
	cases := []struct {
		rho    float64
		s1, s2 float64
	}{
		{3, 0.4, 0.4},
		{1.775, 0.6, 0.8},
	}
	for _, c := range cases {
		best, _, err := Solve(p, speeds, c.rho)
		if err != nil {
			t.Fatalf("ρ=%g: %v", c.rho, err)
		}
		if best.Sigma1 != c.s1 || best.Sigma2 != c.s2 {
			t.Errorf("ρ=%g: exact best (%g,%g), want (%g,%g)",
				c.rho, best.Sigma1, best.Sigma2, c.s1, c.s2)
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	p, speeds := heraXScale()
	if _, _, err := Solve(p, speeds, 0.9); err != core.ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
	if _, _, err := SolveSingleSpeed(p, speeds, 0.9); err != core.ErrInfeasible {
		t.Errorf("single: want ErrInfeasible, got %v", err)
	}
}

func TestSolveGridShape(t *testing.T) {
	p, speeds := heraXScale()
	_, grid, err := Solve(p, speeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(speeds)*len(speeds) {
		t.Errorf("grid size %d, want %d", len(grid), len(speeds)*len(speeds))
	}
	_, grid, err = SolveSingleSpeed(p, speeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(speeds) {
		t.Errorf("single-speed grid size %d, want %d", len(grid), len(speeds))
	}
	for _, r := range grid {
		if r.Sigma1 != r.Sigma2 {
			t.Errorf("single-speed grid contains pair (%g,%g)", r.Sigma1, r.Sigma2)
		}
	}
}

func TestExactTwoSpeedNeverWorseThanSingle(t *testing.T) {
	// The single-speed solution space is a subset of the two-speed space,
	// so the exact two-speed optimum can never be worse.
	for _, get := range []func() (core.Params, []float64){heraXScale, atlasCrusoe} {
		p, speeds := get()
		for _, rho := range []float64{1.5, 2, 3, 8} {
			two, _, err2 := Solve(p, speeds, rho)
			one, _, err1 := SolveSingleSpeed(p, speeds, rho)
			if err2 != nil {
				continue
			}
			if err1 != nil {
				continue // two-speed feasible where single is not: trivially better
			}
			if two.EnergyOverhead > one.EnergyOverhead*(1+1e-9) {
				t.Errorf("ρ=%g: two-speed E/W=%g worse than single=%g",
					rho, two.EnergyOverhead, one.EnergyOverhead)
			}
		}
	}
}

func TestExactPairTightBoundOnBoundary(t *testing.T) {
	// Just above ρmin the feasible window is a sliver; the solution must
	// sit essentially at the boundary with T/W ≈ ρ.
	p, _ := heraXScale()
	s1, s2 := 0.4, 0.4
	rho := p.RhoMin(s1, s2) * 1.001
	r := ExactPair(p, s1, s2, rho)
	if !r.Feasible {
		t.Fatal("sliver bound should be feasible")
	}
	if math.Abs(r.TimeOverhead-rho) > 0.05*(rho-1/s1) {
		t.Errorf("T/W=%g not near boundary ρ=%g", r.TimeOverhead, rho)
	}
}

func TestExactPairLooseBoundMatchesUnconstrained(t *testing.T) {
	// With a huge ρ the constraint is inactive: the optimum is the
	// unconstrained exact-energy minimizer, close to the closed-form We.
	p, _ := heraXScale()
	s1, s2 := 0.4, 0.4
	r := ExactPair(p, s1, s2, 1000)
	if !r.Feasible {
		t.Fatal("loose bound must be feasible")
	}
	if mathx.RelErr(r.W, p.WEnergy(s1, s2)) > 0.02 {
		t.Errorf("unconstrained exact W=%g vs We=%g", r.W, p.WEnergy(s1, s2))
	}
}

// Package optimize solves the BiCrit problem against the *exact*
// expectations of Propositions 2–3 rather than their first-order Taylor
// approximations. It exists to cross-validate Theorem 1: for realistic
// parameters (λW ≪ 1) the exact optimum and the closed-form optimum must
// agree to first order, and the test suite asserts that they do.
//
// The exact per-unit overheads x(W) = T(W,σ1,σ2)/W and E(W,σ1,σ2)/W both
// diverge as W → 0⁺ (the fixed pattern costs dominate) and as W → ∞ (the
// expected number of re-executions explodes exponentially), and are
// unimodal in between, so:
//
//  1. minimize T/W; if even its minimum exceeds ρ the pair is infeasible;
//  2. otherwise isolate the two crossings of T/W = ρ by Brent root
//     finding on each side of the time minimizer — the feasible interval;
//  3. minimize E/W inside the feasible interval with Brent minimization,
//     comparing the interior minimizer against both interval endpoints.
package optimize

import (
	"math"

	"respeed/internal/core"
	"respeed/internal/mathx"
)

// Result is the outcome of an exact optimization for one speed pair.
type Result struct {
	// Sigma1, Sigma2 are the speeds the result refers to.
	Sigma1, Sigma2 float64
	// Feasible reports whether any W satisfies the exact bound.
	Feasible bool
	// W is the exact-optimal pattern size (0 when infeasible).
	W float64
	// WLo, WHi bound the exact feasible interval for W.
	WLo, WHi float64
	// TimeOverhead and EnergyOverhead are the exact per-unit expectations
	// at W.
	TimeOverhead, EnergyOverhead float64
}

// seedW returns a positive starting pattern size for bracket expansion:
// the first-order time-optimal size, which is always within a constant
// factor of both exact optima in the λW ≪ 1 regime.
func seedW(p core.Params, s1, s2 float64) float64 {
	w := p.WTime(s1, s2)
	if !(w > 0) || math.IsInf(w, 0) {
		return 1
	}
	return w
}

// ExactPair solves the exact BiCrit problem for one speed pair.
func ExactPair(p core.Params, s1, s2, rho float64) Result {
	res := Result{Sigma1: s1, Sigma2: s2}
	timeOH := func(w float64) float64 { return p.TimeOverheadExact(w, s1, s2) }
	energyOH := func(w float64) float64 { return p.EnergyOverheadExact(w, s1, s2) }

	// Step 1: the unconstrained time minimizer.
	wt, err := mathx.MinimizeConvex1D(timeOH, seedW(p, s1, s2), 1e-10)
	if err != nil || timeOH(wt) > rho {
		return res
	}

	// Step 2: the feasible interval around wt. Expand outward until the
	// overhead exceeds ρ, then root-find the crossing.
	lo := wt
	for timeOH(lo) <= rho && lo > 1e-12 {
		lo /= 2
	}
	hi := wt
	for timeOH(hi) <= rho && hi < 1e18 {
		hi *= 2
	}
	f := func(w float64) float64 { return timeOH(w) - rho }
	w1, err1 := mathx.BrentRoot(f, lo, wt, 1e-9*wt)
	if err1 != nil {
		w1 = lo
	}
	w2, err2 := mathx.BrentRoot(f, wt, hi, 1e-9*wt)
	if err2 != nil {
		w2 = hi
	}
	res.WLo, res.WHi = w1, w2

	// Step 3: minimize energy over [w1, w2].
	var wBest float64
	if w2 > w1 {
		wInt, err := mathx.BrentMin(energyOH, w1, w2, 1e-12)
		if err != nil {
			wInt = (w1 + w2) / 2
		}
		wBest = wInt
		for _, cand := range []float64{w1, w2} {
			if energyOH(cand) < energyOH(wBest) {
				wBest = cand
			}
		}
	} else {
		wBest = w1
	}
	res.Feasible = true
	res.W = wBest
	res.TimeOverhead = timeOH(wBest)
	res.EnergyOverhead = energyOH(wBest)
	return res
}

// Solve runs ExactPair over every pair from speeds and returns the
// energy-minimizing feasible result plus the full grid. It returns
// core.ErrInfeasible when nothing is feasible.
func Solve(p core.Params, speeds []float64, rho float64) (best Result, grid []Result, err error) {
	grid = make([]Result, 0, len(speeds)*len(speeds))
	bestIdx := -1
	for _, s1 := range speeds {
		for _, s2 := range speeds {
			r := ExactPair(p, s1, s2, rho)
			grid = append(grid, r)
			if !r.Feasible {
				continue
			}
			if bestIdx < 0 || r.EnergyOverhead < grid[bestIdx].EnergyOverhead {
				bestIdx = len(grid) - 1
			}
		}
	}
	if bestIdx < 0 {
		return Result{}, grid, core.ErrInfeasible
	}
	return grid[bestIdx], grid, nil
}

// SolveSingleSpeed is Solve restricted to σ2 = σ1.
func SolveSingleSpeed(p core.Params, speeds []float64, rho float64) (best Result, grid []Result, err error) {
	grid = make([]Result, 0, len(speeds))
	bestIdx := -1
	for _, s := range speeds {
		r := ExactPair(p, s, s, rho)
		grid = append(grid, r)
		if !r.Feasible {
			continue
		}
		if bestIdx < 0 || r.EnergyOverhead < grid[bestIdx].EnergyOverhead {
			bestIdx = len(grid) - 1
		}
	}
	if bestIdx < 0 {
		return Result{}, grid, core.ErrInfeasible
	}
	return grid[bestIdx], grid, nil
}

package optimize

import (
	"math"
	"testing"

	"respeed/internal/core"
	"respeed/internal/mathx"
)

func TestContinuousNeverWorseThanDiscrete(t *testing.T) {
	// The continuous box contains every discrete speed, so the relaxation
	// can never be worse than the discrete optimum.
	p, speeds := heraXScale()
	for _, rho := range []float64{1.775, 3.0} {
		disc, _, err := Solve(p, speeds, rho)
		if err != nil {
			t.Fatal(err)
		}
		cont := SolveContinuous(p, 0.15, 1.0, rho, speeds)
		if !cont.Feasible {
			t.Fatalf("ρ=%g: continuous relaxation infeasible", rho)
		}
		if cont.EnergyOverhead > disc.EnergyOverhead*(1+1e-6) {
			t.Errorf("ρ=%g: continuous E/W=%g worse than discrete %g",
				rho, cont.EnergyOverhead, disc.EnergyOverhead)
		}
		if cont.TimeOverhead > rho*(1+1e-6) {
			t.Errorf("ρ=%g: continuous solution violates the bound (T/W=%g)", rho, cont.TimeOverhead)
		}
	}
}

func TestContinuousSpeedsInsideBox(t *testing.T) {
	p, speeds := heraXScale()
	cont := SolveContinuous(p, 0.15, 1.0, 3, speeds)
	if cont.Sigma1 < 0.15 || cont.Sigma1 > 1 || cont.Sigma2 < 0.15 || cont.Sigma2 > 1 {
		t.Errorf("speeds (%g,%g) outside the box", cont.Sigma1, cont.Sigma2)
	}
}

func TestContinuousTightBound(t *testing.T) {
	// At a tight bound the continuous optimum should pick speeds the
	// discrete set does not offer, strictly improving on it.
	p, speeds := heraXScale()
	rho := 1.775
	disc, _, err := Solve(p, speeds, rho)
	if err != nil {
		t.Fatal(err)
	}
	cont := SolveContinuous(p, 0.15, 1.0, rho, speeds)
	if !cont.Feasible {
		t.Fatal("infeasible")
	}
	if !(cont.EnergyOverhead < disc.EnergyOverhead*(1-1e-4)) {
		t.Errorf("expected a strict continuous improvement at ρ=%g: %g vs %g",
			rho, cont.EnergyOverhead, disc.EnergyOverhead)
	}
}

func TestContinuousInfeasibleBox(t *testing.T) {
	p, speeds := heraXScale()
	// ρ below 1/hi is unreachable even at the fastest continuous speed.
	cont := SolveContinuous(p, 0.15, 1.0, 0.9, speeds)
	if cont.Feasible {
		t.Error("ρ=0.9 should be infeasible for σ ≤ 1")
	}
}

func TestContinuousPanicsOnBadBox(t *testing.T) {
	p, speeds := heraXScale()
	defer func() {
		if recover() == nil {
			t.Error("inverted box should panic")
		}
	}()
	SolveContinuous(p, 1.0, 0.5, 3, speeds)
}

func TestCombinedSolverReducesToSilentOnly(t *testing.T) {
	// With f ≈ 0 the combined numeric solver must agree with the exact
	// silent-only solver.
	p, speeds := heraXScale()
	cp := p.Split(1e-12)
	best, grid, err := SolveCombined(cp, speeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 25 {
		t.Errorf("grid %d", len(grid))
	}
	silent, _, err := Solve(p, speeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best.Sigma1 != silent.Sigma1 || best.Sigma2 != silent.Sigma2 {
		t.Errorf("pairs differ: combined (%g,%g) vs silent (%g,%g)",
			best.Sigma1, best.Sigma2, silent.Sigma1, silent.Sigma2)
	}
	if mathx.RelErr(best.W, silent.W) > 1e-3 {
		t.Errorf("W %g vs %g", best.W, silent.W)
	}
	if mathx.RelErr(best.EnergyOverhead, silent.EnergyOverhead) > 1e-6 {
		t.Errorf("E/W %g vs %g", best.EnergyOverhead, silent.EnergyOverhead)
	}
}

func TestCombinedSolverRespectsBound(t *testing.T) {
	p, speeds := heraXScale()
	for _, f := range []float64{0.25, 0.75} {
		cp := p.Split(f)
		best, grid, err := SolveCombined(cp, speeds, 3)
		if err != nil {
			t.Fatalf("f=%g: %v", f, err)
		}
		if best.TimeOverhead > 3*(1+1e-7) {
			t.Errorf("f=%g: bound violated (T/W=%g)", f, best.TimeOverhead)
		}
		for _, r := range grid {
			if r.Feasible && r.EnergyOverhead < best.EnergyOverhead*(1-1e-12) {
				t.Errorf("f=%g: grid point (%g,%g) beats reported best", f, r.Sigma1, r.Sigma2)
			}
		}
	}
}

func TestCombinedSolverWorksOutsideValidityWindow(t *testing.T) {
	// The whole point of the numeric route: pairs with σ2/σ1 > 2(1+s/f)
	// are out of reach for the paper's first-order method at f=1, but the
	// numeric solver handles them.
	p, _ := heraXScale()
	cp := p.Split(1) // pure fail-stop
	lo, hi := cp.SpeedRatioWindow()
	s1, s2 := 0.15, 1.0 // ratio 6.67 ≫ hi = 2
	if ratio := s2 / s1; !(ratio > hi) {
		t.Fatalf("test premise broken: ratio %g inside window (%g,%g)", ratio, lo, hi)
	}
	r := CombinedPair(cp, s1, s2, 8)
	if !r.Feasible {
		t.Fatal("pair should be feasible at ρ=8")
	}
	if !(r.W > 0) || !(r.TimeOverhead <= 8) {
		t.Errorf("implausible result %+v", r)
	}
}

func TestCombinedSingleSpeed(t *testing.T) {
	p, speeds := heraXScale()
	cp := p.Split(0.5)
	one, grid, err := SolveCombinedSingleSpeed(cp, speeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(speeds) {
		t.Errorf("grid %d", len(grid))
	}
	two, _, err := SolveCombined(cp, speeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if two.EnergyOverhead > one.EnergyOverhead*(1+1e-9) {
		t.Errorf("two-speed %g worse than single %g", two.EnergyOverhead, one.EnergyOverhead)
	}
}

func TestCombinedInfeasible(t *testing.T) {
	p, speeds := heraXScale()
	cp := p.Split(0.5)
	if _, _, err := SolveCombined(cp, speeds, 0.9); err != core.ErrInfeasible {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
	if _, _, err := SolveCombinedSingleSpeed(cp, speeds, 0.9); err != core.ErrInfeasible {
		t.Errorf("single: want ErrInfeasible, got %v", err)
	}
}

func TestCombinedMoreFailStopIsCheaper(t *testing.T) {
	// At fixed total rate, shifting errors from silent to fail-stop can
	// only help (earlier detection): optimal energy overhead is
	// non-increasing in f.
	p, speeds := heraXScale()
	p.Lambda = 1e-4
	prev := math.Inf(1)
	for _, f := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		best, _, err := SolveCombined(p.Split(f), speeds, 3)
		if err != nil {
			t.Fatalf("f=%g: %v", f, err)
		}
		if best.EnergyOverhead > prev*(1+1e-9) {
			t.Errorf("f=%g: energy overhead rose to %g (prev %g)", f, best.EnergyOverhead, prev)
		}
		prev = best.EnergyOverhead
	}
}

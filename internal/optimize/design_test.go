package optimize

import (
	"math"
	"testing"
)

func TestDesignSpeedsBeatsCatalog(t *testing.T) {
	// A designed 5-speed set warm-started from the catalog can never be
	// worse than the catalog on the design objective.
	p, speeds := heraXScale()
	rhos := []float64{1.775, 2.5, 3, 8}
	catalogMean, catalogInfeasible, _ := EvaluateSpeedSet(p, speeds, rhos)
	if catalogInfeasible != 0 {
		t.Fatalf("catalog infeasible on %d bounds", catalogInfeasible)
	}
	res, err := DesignSpeeds(p, 5, 0.15, 1.0, rhos, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > catalogMean*(1+1e-9) {
		t.Errorf("designed objective %g worse than catalog %g", res.Objective, catalogMean)
	}
	for _, e := range res.PerRho {
		if math.IsNaN(e) {
			t.Error("designed set infeasible on a target bound")
		}
	}
}

func TestDesignSpeedsOrderedInsideBox(t *testing.T) {
	p, _ := heraXScale()
	res, err := DesignSpeeds(p, 4, 0.2, 0.9, []float64{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Speeds) != 4 {
		t.Fatalf("got %d speeds", len(res.Speeds))
	}
	for i, s := range res.Speeds {
		if s < 0.2 || s > 0.9 {
			t.Errorf("speed %g outside box", s)
		}
		if i > 0 && !(s > res.Speeds[i-1]) {
			t.Errorf("speeds not strictly ascending: %v", res.Speeds)
		}
	}
}

func TestDesignSpeedsSingleSlot(t *testing.T) {
	// With k=1 the set has one speed and both σ1, σ2 equal it; the design
	// objective equals the single-speed optimum over that speed.
	p, _ := heraXScale()
	res, err := DesignSpeeds(p, 1, 0.2, 1.0, []float64{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Speeds) != 1 {
		t.Fatalf("speeds %v", res.Speeds)
	}
	sol, err := p.Solve(res.Speeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Best.EnergyOverhead-res.Objective) > 1e-9*res.Objective {
		t.Errorf("objective %g vs re-solve %g", res.Objective, sol.Best.EnergyOverhead)
	}
}

func TestDesignSpeedsTightBoundNeedsFastSpeed(t *testing.T) {
	// A very tight bound forces the designed set to include a near-max
	// speed.
	p, _ := heraXScale()
	res, err := DesignSpeeds(p, 3, 0.15, 1.0, []float64{1.1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	top := res.Speeds[len(res.Speeds)-1]
	if top < 0.95 {
		t.Errorf("tight bound designed top speed %g, want ≈ 1", top)
	}
	if math.IsNaN(res.PerRho[0]) {
		t.Error("design failed to make the tight bound feasible")
	}
}

func TestDesignSpeedsGuards(t *testing.T) {
	p, speeds := heraXScale()
	if _, err := DesignSpeeds(p, 0, 0.2, 1, []float64{3}, nil); err == nil {
		t.Error("k=0 should be rejected")
	}
	if _, err := DesignSpeeds(p, 2, 1, 0.2, []float64{3}, nil); err == nil {
		t.Error("inverted box should be rejected")
	}
	if _, err := DesignSpeeds(p, 2, 0.2, 1, nil, nil); err == nil {
		t.Error("empty bounds should be rejected")
	}
	if _, err := DesignSpeeds(p, 2, 0.2, 1, []float64{3}, speeds); err == nil {
		t.Error("mismatched warm start should be rejected")
	}
}

func TestEvaluateSpeedSetInfeasibleCounting(t *testing.T) {
	p, speeds := heraXScale()
	mean, infeasible, perRho := EvaluateSpeedSet(p, speeds, []float64{0.5, 3})
	if infeasible != 1 {
		t.Errorf("infeasible count %d, want 1", infeasible)
	}
	if !math.IsNaN(perRho[0]) || math.IsNaN(perRho[1]) {
		t.Errorf("perRho %v", perRho)
	}
	if math.IsNaN(mean) {
		t.Error("mean should skip infeasible bounds")
	}
	allBad, infeasible2, _ := EvaluateSpeedSet(p, speeds, []float64{0.5})
	if !math.IsNaN(allBad) || infeasible2 != 1 {
		t.Error("all-infeasible evaluation should be NaN")
	}
}

package optimize

import (
	"math"

	"respeed/internal/core"
	"respeed/internal/mathx"
)

// ContinuousResult is the optimum of the continuous-speed relaxation.
type ContinuousResult struct {
	// Sigma1, Sigma2 are the continuous optimal speeds in [lo, hi].
	Sigma1, Sigma2 float64
	// W is the optimal pattern size at those speeds.
	W float64
	// TimeOverhead and EnergyOverhead are the exact per-unit expectations.
	TimeOverhead, EnergyOverhead float64
	// Feasible reports whether any speeds in the box meet the bound.
	Feasible bool
}

// SolveContinuous relaxes the discrete speed set to the continuous box
// [lo, hi]² and minimizes the exact energy overhead subject to the exact
// time bound, using Nelder–Mead over (σ1, σ2) with the W-subproblem
// solved exactly per candidate (ExactPair). It quantifies what the
// discreteness of real DVFS states costs — the "continuous-speeds"
// ablation in the experiment registry.
//
// The relaxation is seeded from the best discrete pair; if the discrete
// problem is infeasible it seeds from (hi, hi).
func SolveContinuous(p core.Params, lo, hi, rho float64, discreteSeed []float64) ContinuousResult {
	if !(lo > 0) || !(hi > lo) {
		panic("optimize: invalid continuous speed box")
	}
	// Seed.
	seed := []float64{hi, hi}
	if best, _, err := Solve(p, discreteSeed, rho); err == nil {
		seed = []float64{best.Sigma1, best.Sigma2}
	}

	const penalty = 1e18
	objective := func(x []float64) float64 {
		s1, s2 := x[0], x[1]
		if s1 < lo || s1 > hi || s2 < lo || s2 > hi {
			// Smooth-ish penalty pulls Nelder–Mead back into the box.
			d := math.Max(0, lo-s1) + math.Max(0, s1-hi) +
				math.Max(0, lo-s2) + math.Max(0, s2-hi)
			return penalty * (1 + d)
		}
		r := ExactPair(p, s1, s2, rho)
		if !r.Feasible {
			// Infeasible speeds: penalize by the violation of the bound at
			// the time-optimal W, keeping a gradient toward feasibility.
			wt := p.WTime(s1, s2)
			return penalty * (1 + p.TimeOverheadExact(wt, s1, s2) - rho)
		}
		return r.EnergyOverhead
	}

	x := mathx.NelderMead(objective, seed, 0.05*(hi-lo), 1e-10, 2000)
	s1 := mathx.Clamp(x[0], lo, hi)
	s2 := mathx.Clamp(x[1], lo, hi)
	r := ExactPair(p, s1, s2, rho)
	if !r.Feasible {
		return ContinuousResult{Sigma1: s1, Sigma2: s2}
	}
	return ContinuousResult{
		Sigma1: s1, Sigma2: s2, W: r.W,
		TimeOverhead: r.TimeOverhead, EnergyOverhead: r.EnergyOverhead,
		Feasible: true,
	}
}

package optimize

import (
	"fmt"
	"math"
	"sort"

	"respeed/internal/core"
	"respeed/internal/mathx"
)

// DesignResult is the outcome of a speed-set design run.
type DesignResult struct {
	// Speeds is the designed ascending speed set.
	Speeds []float64
	// Objective is the achieved design objective (mean energy overhead
	// across the target bounds; +penalties for infeasible bounds).
	Objective float64
	// PerRho maps each target bound to the energy overhead the designed
	// set achieves there (NaN when infeasible).
	PerRho []float64
}

// DesignSpeeds chooses k DVFS states in [lo, hi] that minimize the mean
// two-speed energy overhead of the BiCrit optimum across the target
// bounds rhos — "which speeds should this processor expose for this
// platform?". It turns the paper's model from an analysis into a design
// tool: the catalog speed sets (Table 2) are hardware givens; this
// computes what a workload-aware set would look like.
//
// The search runs Nelder–Mead over the k speeds (penalty-clamped to the
// box, de-duplicated by a minimum gap) from a uniform seed and from the
// provided warmStart (if non-nil), keeping the better result.
func DesignSpeeds(p core.Params, k int, lo, hi float64, rhos []float64, warmStart []float64) (DesignResult, error) {
	if k < 1 {
		return DesignResult{}, fmt.Errorf("optimize: need k ≥ 1 speeds")
	}
	if !(lo > 0) || !(hi > lo) {
		return DesignResult{}, fmt.Errorf("optimize: invalid speed box [%g, %g]", lo, hi)
	}
	if len(rhos) == 0 {
		return DesignResult{}, fmt.Errorf("optimize: need at least one target bound")
	}
	const minGap = 1e-3

	// normalize maps a raw NM vector to a valid ascending speed set.
	normalize := func(x []float64) []float64 {
		s := make([]float64, len(x))
		for i, v := range x {
			s[i] = mathx.Clamp(v, lo, hi)
		}
		sort.Float64s(s)
		for i := 1; i < len(s); i++ {
			if s[i]-s[i-1] < minGap {
				s[i] = math.Min(hi, s[i-1]+minGap)
			}
		}
		return s
	}

	objective := func(x []float64) float64 {
		speeds := normalize(x)
		var total float64
		for _, rho := range rhos {
			sol, err := p.Solve(speeds, rho)
			if err != nil {
				// Infeasible bound: heavy but smooth-ish penalty via the
				// closest feasibility gap, so the search climbs out.
				gap := math.Inf(1)
				for _, s1 := range speeds {
					for _, s2 := range speeds {
						gap = math.Min(gap, p.RhoMin(s1, s2)-rho)
					}
				}
				total += 1e9 * (1 + math.Max(0, gap))
				continue
			}
			total += sol.Best.EnergyOverhead
		}
		return total / float64(len(rhos))
	}

	// Seeds: uniform spread, plus the caller's warm start.
	seeds := [][]float64{mathx.Linspace(lo, hi, int(math.Max(2, float64(k))))[:k]}
	if k == 1 {
		seeds = [][]float64{{(lo + hi) / 2}}
	}
	if warmStart != nil {
		if len(warmStart) != k {
			return DesignResult{}, fmt.Errorf("optimize: warm start has %d speeds, want %d", len(warmStart), k)
		}
		seeds = append(seeds, append([]float64(nil), warmStart...))
	}

	best := DesignResult{Objective: math.Inf(1)}
	for _, seed := range seeds {
		x := mathx.NelderMead(objective, seed, 0.08*(hi-lo), 1e-10, 4000)
		speeds := normalize(x)
		obj := objective(speeds)
		if obj < best.Objective {
			best = DesignResult{Speeds: speeds, Objective: obj}
		}
	}

	best.PerRho = make([]float64, len(rhos))
	for i, rho := range rhos {
		if sol, err := p.Solve(best.Speeds, rho); err == nil {
			best.PerRho[i] = sol.Best.EnergyOverhead
		} else {
			best.PerRho[i] = math.NaN()
		}
	}
	return best, nil
}

// EvaluateSpeedSet computes the design objective of an existing speed
// set over the target bounds (NaN per infeasible bound; the mean skips
// them and the second return counts them).
func EvaluateSpeedSet(p core.Params, speeds []float64, rhos []float64) (mean float64, infeasible int, perRho []float64) {
	perRho = make([]float64, len(rhos))
	var sum float64
	n := 0
	for i, rho := range rhos {
		sol, err := p.Solve(speeds, rho)
		if err != nil {
			perRho[i] = math.NaN()
			infeasible++
			continue
		}
		perRho[i] = sol.Best.EnergyOverhead
		sum += sol.Best.EnergyOverhead
		n++
	}
	if n == 0 {
		return math.NaN(), infeasible, perRho
	}
	return sum / float64(n), infeasible, perRho
}

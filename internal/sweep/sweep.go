// Package sweep runs parameter sweeps in parallel with deterministic
// output ordering. Every figure of the paper is a sweep of one model
// parameter against the optimal solution; with eight configurations,
// six parameters each, and Monte-Carlo validation on top, the experiment
// suite is embarrassingly parallel — this package is the harness.
//
// Results are returned in input order regardless of goroutine
// scheduling, so experiment output (and therefore EXPERIMENTS.md) is
// byte-stable across runs and core counts.
package sweep

import (
	"context"
	"fmt"
	"math"

	"respeed/internal/engine"
)

// Point is one sweep evaluation: the swept parameter value and an opaque
// result payload.
type Point[T any] struct {
	// X is the parameter value this point was evaluated at. Points
	// produced by Map have no abscissa; their X is NaN and error
	// messages identify them by index only.
	X float64
	// Value is the evaluation result.
	Value T
	// Err is non-nil when the evaluation failed; Value is then zero.
	Err error
	// hasX records whether X is a real abscissa (Run) or absent (Map),
	// so diagnostics never report a fabricated x value.
	hasX bool
}

// describe labels the point for error messages: with its abscissa when
// it has one, by index alone otherwise.
func (p Point[T]) describe(i int) string {
	if p.hasX {
		return fmt.Sprintf("point %d (x=%g)", i, p.X)
	}
	return fmt.Sprintf("point %d", i)
}

// forIndexes fans eval(0..n-1) out across at most workers concurrent
// executions (0 selects GOMAXPROCS, never more than n) on the shared
// replication executor — sweeps and the Monte-Carlo fan-outs they
// invoke draw from one amortized pool instead of spawning a goroutine
// set per call. eval must be safe for concurrent invocation. eval never
// returns an error and panics are handled by safeCall, so the fan-out
// itself cannot fail.
func forIndexes(n, workers int, eval func(i int)) {
	engine.SharedExecutor().FanOut(context.Background(), n, workers, func(i int) error {
		eval(i)
		return nil
	})
}

// Run evaluates fn at every x in xs, fanning out across at most workers
// goroutines (0 selects GOMAXPROCS). The returned slice is ordered like
// xs. fn must be safe for concurrent invocation; each call receives the
// index so callers can derive per-point RNG streams.
func Run[T any](xs []float64, workers int, fn func(i int, x float64) (T, error)) []Point[T] {
	out := make([]Point[T], len(xs))
	forIndexes(len(xs), workers, func(i int) {
		v, err := safeCall(func() (T, error) { return fn(i, xs[i]) },
			fmt.Sprintf("point %d (x=%g)", i, xs[i]))
		out[i] = Point[T]{X: xs[i], Value: v, Err: err, hasX: true}
	})
	return out
}

// safeCall converts a panic in fn into an error so one bad point cannot
// take down a whole sweep.
func safeCall[T any](fn func() (T, error), label string) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: panic at %s: %v", label, r)
		}
	}()
	return fn()
}

// Values extracts the result payloads, propagating the first error.
func Values[T any](pts []Point[T]) ([]T, error) {
	out := make([]T, len(pts))
	for i, p := range pts {
		if p.Err != nil {
			return nil, fmt.Errorf("sweep: %s: %w", p.describe(i), p.Err)
		}
		out[i] = p.Value
	}
	return out, nil
}

// FirstError returns the first error among the points, or nil.
func FirstError[T any](pts []Point[T]) error {
	for i, p := range pts {
		if p.Err != nil {
			return fmt.Errorf("sweep: %s: %w", p.describe(i), p.Err)
		}
	}
	return nil
}

// Map runs fn over an arbitrary input slice (not just float64 abscissas)
// with the same ordering and panic-safety guarantees. The resulting
// points carry no abscissa (X is NaN): diagnostics identify them by
// index only instead of fabricating an x value.
func Map[In, Out any](inputs []In, workers int, fn func(i int, in In) (Out, error)) []Point[Out] {
	out := make([]Point[Out], len(inputs))
	forIndexes(len(inputs), workers, func(i int) {
		v, err := safeCall(func() (Out, error) { return fn(i, inputs[i]) },
			fmt.Sprintf("point %d", i))
		out[i] = Point[Out]{X: math.NaN(), Value: v, Err: err}
	})
	return out
}

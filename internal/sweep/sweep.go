// Package sweep runs parameter sweeps in parallel with deterministic
// output ordering. Every figure of the paper is a sweep of one model
// parameter against the optimal solution; with eight configurations,
// six parameters each, and Monte-Carlo validation on top, the experiment
// suite is embarrassingly parallel — this package is the harness.
//
// Results are returned in input order regardless of goroutine
// scheduling, so experiment output (and therefore EXPERIMENTS.md) is
// byte-stable across runs and core counts.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Point is one sweep evaluation: the swept parameter value and an opaque
// result payload.
type Point[T any] struct {
	// X is the parameter value this point was evaluated at.
	X float64
	// Value is the evaluation result.
	Value T
	// Err is non-nil when the evaluation failed; Value is then zero.
	Err error
}

// Run evaluates fn at every x in xs, fanning out across at most workers
// goroutines (0 selects GOMAXPROCS). The returned slice is ordered like
// xs. fn must be safe for concurrent invocation; each call receives the
// index so callers can derive per-point RNG streams.
func Run[T any](xs []float64, workers int, fn func(i int, x float64) (T, error)) []Point[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	out := make([]Point[T], len(xs))
	if len(xs) == 0 {
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	worker := func() {
		defer wg.Done()
		for i := range idx {
			v, err := safeCall(fn, i, xs[i])
			out[i] = Point[T]{X: xs[i], Value: v, Err: err}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	for i := range xs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// safeCall converts a panic in fn into an error so one bad point cannot
// take down a whole sweep.
func safeCall[T any](fn func(int, float64) (T, error), i int, x float64) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: panic at point %d (x=%g): %v", i, x, r)
		}
	}()
	return fn(i, x)
}

// Values extracts the result payloads, propagating the first error.
func Values[T any](pts []Point[T]) ([]T, error) {
	out := make([]T, len(pts))
	for i, p := range pts {
		if p.Err != nil {
			return nil, fmt.Errorf("sweep: point %d (x=%g): %w", i, p.X, p.Err)
		}
		out[i] = p.Value
	}
	return out, nil
}

// FirstError returns the first error among the points, or nil.
func FirstError[T any](pts []Point[T]) error {
	for i, p := range pts {
		if p.Err != nil {
			return fmt.Errorf("sweep: point %d (x=%g): %w", i, p.X, p.Err)
		}
	}
	return nil
}

// Map runs fn over an arbitrary input slice (not just float64 abscissas)
// with the same ordering and panic-safety guarantees.
func Map[In, Out any](inputs []In, workers int, fn func(i int, in In) (Out, error)) []Point[Out] {
	xs := make([]float64, len(inputs))
	for i := range xs {
		xs[i] = float64(i)
	}
	return Run(xs, workers, func(i int, _ float64) (Out, error) {
		return fn(i, inputs[i])
	})
}

package sweep

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"respeed/internal/mathx"
)

func TestRunOrderedResults(t *testing.T) {
	xs := mathx.Linspace(0, 99, 100)
	pts := Run(xs, 8, func(i int, x float64) (float64, error) {
		return x * x, nil
	})
	if len(pts) != 100 {
		t.Fatalf("len = %d", len(pts))
	}
	for i, p := range pts {
		if p.X != xs[i] {
			t.Errorf("point %d has X=%g, want %g", i, p.X, xs[i])
		}
		if p.Value != xs[i]*xs[i] {
			t.Errorf("point %d value %g", i, p.Value)
		}
	}
}

func TestRunActuallyParallel(t *testing.T) {
	var peak, cur atomic.Int32
	block := make(chan struct{})
	done := make(chan []Point[int])
	go func() {
		done <- Run(make([]float64, 8), 4, func(i int, _ float64) (int, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-block
			cur.Add(-1)
			return i, nil
		})
	}()
	// Release all workers after they have had a chance to pile up.
	for i := 0; i < 8; i++ {
		block <- struct{}{}
	}
	<-done
	if peak.Load() < 2 {
		t.Errorf("peak concurrency %d, want ≥ 2", peak.Load())
	}
}

func TestRunZeroWorkersDefaults(t *testing.T) {
	pts := Run([]float64{1, 2, 3}, 0, func(i int, x float64) (float64, error) {
		return 2 * x, nil
	})
	vals, err := Values(pts)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 2 || vals[1] != 4 || vals[2] != 6 {
		t.Errorf("values %v", vals)
	}
}

func TestRunEmpty(t *testing.T) {
	pts := Run(nil, 4, func(i int, x float64) (int, error) { return 0, nil })
	if len(pts) != 0 {
		t.Errorf("empty sweep returned %d points", len(pts))
	}
}

func TestErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	pts := Run([]float64{1, 2, 3}, 2, func(i int, x float64) (int, error) {
		if i == 1 {
			return 0, sentinel
		}
		return i, nil
	})
	if _, err := Values(pts); !errors.Is(err, sentinel) {
		t.Errorf("Values error = %v", err)
	}
	if err := FirstError(pts); !errors.Is(err, sentinel) {
		t.Errorf("FirstError = %v", err)
	}
}

func TestNoErrorPath(t *testing.T) {
	pts := Run([]float64{1}, 1, func(i int, x float64) (int, error) { return 7, nil })
	if err := FirstError(pts); err != nil {
		t.Errorf("FirstError = %v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	pts := Run([]float64{1, 2}, 2, func(i int, x float64) (int, error) {
		if i == 0 {
			panic("kaboom")
		}
		return 1, nil
	})
	if pts[0].Err == nil {
		t.Error("panic was not converted to error")
	}
	if pts[1].Err != nil || pts[1].Value != 1 {
		t.Error("panic poisoned the healthy point")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	xs := mathx.Logspace(1e-6, 1e-2, 60)
	eval := func(i int, x float64) (float64, error) {
		return math.Sqrt(300/x) + float64(i), nil
	}
	seq := Run(xs, 1, eval)
	par := Run(xs, 16, eval)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("point %d differs between 1 and 16 workers", i)
		}
	}
}

func TestMap(t *testing.T) {
	inputs := []string{"a", "bb", "ccc"}
	pts := Map(inputs, 2, func(i int, s string) (int, error) {
		return len(s), nil
	})
	vals, err := Values(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i+1 {
			t.Errorf("value %d = %d", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	pts := Map([]int{1, 2}, 2, func(i int, v int) (int, error) {
		return 0, fmt.Errorf("err-%d", v)
	})
	if err := FirstError(pts); err == nil {
		t.Error("expected error")
	}
}

func TestMapErrorsCarryNoSyntheticX(t *testing.T) {
	// Map has no abscissa: errors must identify points by index only,
	// never with a fabricated "x=<index>".
	sentinel := errors.New("boom")
	pts := Map([]string{"a", "b", "c"}, 1, func(i int, s string) (int, error) {
		if i == 2 {
			return 0, sentinel
		}
		return len(s), nil
	})
	for i, p := range pts {
		if !math.IsNaN(p.X) {
			t.Errorf("mapped point %d has X=%g, want NaN", i, p.X)
		}
	}
	for _, err := range []error{FirstError(pts), func() error { _, e := Values(pts); return e }()} {
		if err == nil {
			t.Fatal("expected error")
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("error %v does not wrap sentinel", err)
		}
		if strings.Contains(err.Error(), "x=") {
			t.Errorf("mapped error mentions a synthetic abscissa: %v", err)
		}
		if !strings.Contains(err.Error(), "point 2") {
			t.Errorf("mapped error does not identify the point index: %v", err)
		}
	}
}

func TestMapPanicCarriesNoSyntheticX(t *testing.T) {
	pts := Map([]int{1}, 1, func(i int, v int) (int, error) { panic("kaboom") })
	if pts[0].Err == nil {
		t.Fatal("panic was not converted to error")
	}
	if strings.Contains(pts[0].Err.Error(), "x=") {
		t.Errorf("mapped panic mentions a synthetic abscissa: %v", pts[0].Err)
	}
}

func TestRunErrorsStillCarryX(t *testing.T) {
	pts := Run([]float64{2.5}, 1, func(i int, x float64) (int, error) {
		return 0, errors.New("boom")
	})
	if err := FirstError(pts); err == nil || !strings.Contains(err.Error(), "x=2.5") {
		t.Errorf("Run error lost its abscissa: %v", err)
	}
}

// Package des is a minimal discrete-event simulation engine: a
// time-ordered event queue with deterministic FIFO tie-breaking. The
// cluster simulator builds on it to model per-node error processes on a
// multi-node platform; it is generic enough for any event-driven model.
package des

import (
	"container/heap"
	"fmt"
)

// Handler is an event callback; it runs with the engine clock set to the
// event's time and may schedule further events.
type Handler func(e *Engine)

type event struct {
	time float64
	seq  uint64 // FIFO tie-break for simultaneous events
	fn   Handler
	id   uint64
	dead bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use;
// it is not safe for concurrent use.
type Engine struct {
	queue   eventQueue
	now     float64
	seq     uint64
	nextID  uint64
	pending map[uint64]*event
	steps   uint64
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Steps returns how many events have been processed.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of live scheduled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// EventID identifies a scheduled event for cancellation.
type EventID uint64

// Schedule enqueues fn to run delay seconds from now. Negative delays
// panic — scheduling into the past is always a model bug. Events at equal
// times run in scheduling order.
func (e *Engine) Schedule(delay float64, fn Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %g", delay))
	}
	if fn == nil {
		panic("des: nil handler")
	}
	if e.pending == nil {
		e.pending = make(map[uint64]*event)
	}
	e.seq++
	e.nextID++
	ev := &event{time: e.now + delay, seq: e.seq, fn: fn, id: e.nextID}
	heap.Push(&e.queue, ev)
	e.pending[ev.id] = ev
	return EventID(ev.id)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// unknown event is a no-op returning false.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.pending[uint64(id)]
	if !ok {
		return false
	}
	ev.dead = true
	delete(e.pending, uint64(id))
	return true
}

// step fires the next live event; returns false when the queue is empty.
func (e *Engine) step(until float64) bool {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if ev.dead {
			heap.Pop(&e.queue)
			continue
		}
		if ev.time > until {
			return false
		}
		heap.Pop(&e.queue)
		delete(e.pending, ev.id)
		e.now = ev.time
		e.steps++
		ev.fn(e)
		return true
	}
	return false
}

// RunUntil processes events in time order until the clock would pass
// `until` (events after it stay queued) and then advances the clock to
// `until`. It panics on time travel.
func (e *Engine) RunUntil(until float64) {
	if until < e.now {
		panic(fmt.Sprintf("des: RunUntil(%g) before now (%g)", until, e.now))
	}
	for e.step(until) {
	}
	e.now = until
}

// Run processes every queued event to exhaustion.
func (e *Engine) Run() {
	for e.step(maxTime) {
	}
}

const maxTime = 1e300

// Drain cancels every pending event, leaving the clock untouched.
func (e *Engine) Drain() {
	for id := range e.pending {
		e.Cancel(EventID(id))
	}
}

package des

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(3, func(*Engine) { order = append(order, 3) })
	e.Schedule(1, func(*Engine) { order = append(order, 1) })
	e.Schedule(2, func(*Engine) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("clock %g", e.Now())
	}
	if e.Steps() != 3 {
		t.Errorf("steps %d", e.Steps())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var times []float64
	var chain Handler
	count := 0
	chain = func(en *Engine) {
		times = append(times, en.Now())
		count++
		if count < 5 {
			en.Schedule(10, chain)
		}
	}
	e.Schedule(10, chain)
	e.Run()
	if len(times) != 5 {
		t.Fatalf("chain ran %d times", len(times))
	}
	for i, tm := range times {
		if tm != float64(10*(i+1)) {
			t.Errorf("event %d at %g", i, tm)
		}
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	var e Engine
	fired := 0
	e.Schedule(1, func(*Engine) { fired++ })
	e.Schedule(10, func(*Engine) { fired++ })
	e.RunUntil(5)
	if fired != 1 {
		t.Errorf("fired %d, want 1", fired)
	}
	if e.Now() != 5 {
		t.Errorf("clock %g, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending %d", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Errorf("fired %d after Run", fired)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	id := e.Schedule(1, func(*Engine) { fired = true })
	if !e.Cancel(id) {
		t.Error("Cancel returned false for a live event")
	}
	if e.Cancel(id) {
		t.Error("double Cancel should return false")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestDrain(t *testing.T) {
	var e Engine
	fired := 0
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i+1), func(*Engine) { fired++ })
	}
	e.Drain()
	e.Run()
	if fired != 0 {
		t.Errorf("drained events fired %d times", fired)
	}
	if e.Pending() != 0 {
		t.Errorf("pending %d after drain", e.Pending())
	}
}

func TestScheduleAtCurrentTime(t *testing.T) {
	var e Engine
	var order []string
	e.Schedule(1, func(en *Engine) {
		order = append(order, "a")
		en.Schedule(0, func(*Engine) { order = append(order, "b") })
	})
	e.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("order %v", order)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("negative delay should panic")
		}
	}()
	e.Schedule(-1, func(*Engine) {})
}

func TestNilHandlerPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("nil handler should panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestRunUntilTimeTravelPanics(t *testing.T) {
	var e Engine
	e.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Error("backwards RunUntil should panic")
		}
	}()
	e.RunUntil(5)
}

func TestManyEvents(t *testing.T) {
	var e Engine
	const n = 100000
	fired := 0
	// Schedule in a scrambled order; deterministic LCG scramble.
	state := uint64(12345)
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		delay := float64(state%1000000) / 1000.0
		e.Schedule(delay, func(*Engine) { fired++ })
	}
	e.Run()
	if fired != n {
		t.Errorf("fired %d of %d", fired, n)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%17), func(*Engine) {})
		}
		e.Run()
	}
}

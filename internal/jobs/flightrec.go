package jobs

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"sync"
)

// ShardTrace is one line of a job's flight recorder: the timeline of a
// single shard's (final) attempt, with enough attribution to answer
// "why was this campaign slow" from one endpoint — where the shard
// waited, where it ran, how often it was retried and why.
type ShardTrace struct {
	Shard   int     `json:"shard"`
	Config  string  `json:"config"`
	Rho     float64 `json:"rho"`
	Attempt int     `json:"attempt"` // attempt number that settled the shard
	// Peer is the executing daemon ("local" for in-process execution,
	// a peer URL for fleet dispatch).
	Peer string `json:"peer"`
	// QueueSeconds is how long the shard waited for a worker slot and
	// the compute gate before its first attempt could start.
	QueueSeconds float64 `json:"queue_seconds"`
	// DispatchSeconds is the settling attempt's wall-clock as seen by
	// the coordinator — for remote shards this includes the network
	// round-trip, so DispatchSeconds-ExecSeconds isolates transfer cost.
	DispatchSeconds float64 `json:"dispatch_seconds"`
	// ExecSeconds is the peer-reported pure execution time (equals
	// DispatchSeconds for local shards).
	ExecSeconds float64 `json:"exec_seconds"`
	// RetryCause is the error that forced the most recent re-dispatch,
	// empty when the first attempt settled the shard.
	RetryCause  string `json:"retry_cause,omitempty"`
	ResultBytes int    `json:"result_bytes"`
	// OK is false only when the shard exhausted its attempts (the entry
	// then records the failure for forensics).
	OK bool `json:"ok"`
}

// traceRingCap bounds the in-memory flight-recorder ring per job. The
// JSONL sidecar keeps full history; the ring keeps the hot tail.
const traceRingCap = 4096

// flightRecorder is a job's per-shard timeline: a bounded in-memory
// ring mirrored best-effort into a JSONL sidecar next to the CRC-framed
// journal. The sidecar is telemetry, not state — it is never fsynced,
// a torn tail line is skipped on reload, and losing it cannot affect
// the campaign result (which lives in the journal/snapshot alone).
type flightRecorder struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	entries []ShardTrace
	dropped int
}

func newFlightRecorder(path string) *flightRecorder {
	return &flightRecorder{path: path}
}

// loadFlightRecorder rebuilds a recorder ring from its JSONL sidecar.
// Malformed lines (a torn tail from a crash) are skipped, not fatal.
func loadFlightRecorder(path string) *flightRecorder {
	r := newFlightRecorder(path)
	f, err := os.Open(path)
	if err != nil {
		return r
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e ShardTrace
		if json.Unmarshal(sc.Bytes(), &e) != nil {
			continue
		}
		r.appendLocked(e)
	}
	return r
}

// appendLocked pushes one entry into the bounded ring (r.mu NOT held —
// load-time only, before the recorder is shared).
func (r *flightRecorder) appendLocked(e ShardTrace) {
	if len(r.entries) >= traceRingCap {
		r.entries = r.entries[1:]
		r.dropped++
	}
	r.entries = append(r.entries, e)
}

// record appends an entry to the ring and the sidecar.
func (r *flightRecorder) record(e ShardTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.appendLocked(e)
	if r.f == nil {
		f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return // best-effort: the ring still has the entry
		}
		r.f = f
	}
	if b, err := json.Marshal(e); err == nil {
		r.f.Write(append(b, '\n'))
	}
}

// snapshot copies the ring (oldest first) and the drop count.
func (r *flightRecorder) snapshot() ([]ShardTrace, int) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]ShardTrace(nil), r.entries...), r.dropped
}

// closeFile releases the sidecar handle (the ring stays readable).
func (r *flightRecorder) closeFile() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// JobTrace is the GET /v1/jobs/{id}/trace payload: the job's flight
// recorder plus enough status to interpret it.
type JobTrace struct {
	JobID       string       `json:"job"`
	State       State        `json:"state"`
	ShardsTotal int          `json:"shards_total"`
	ShardsDone  int          `json:"shards_done"`
	// Dropped counts timeline entries evicted from the bounded ring
	// (only campaigns beyond traceRingCap shards ever drop).
	Dropped int          `json:"dropped,omitempty"`
	Shards  []ShardTrace `json:"shards"`
}

// Trace returns a job's flight-recorder timeline.
func (m *Manager) Trace(id string) (JobTrace, error) {
	j, err := m.get(id)
	if err != nil {
		return JobTrace{}, err
	}
	entries, dropped := j.rec.snapshot()
	j.mu.Lock()
	jt := JobTrace{
		JobID: j.id, State: j.state,
		ShardsTotal: len(j.shards), ShardsDone: len(j.done),
		Dropped: dropped, Shards: entries,
	}
	j.mu.Unlock()
	return jt, nil
}

// shardAttr is the per-attempt attribution slot a ShardRunner reports
// into: the manager threads a pointer through the attempt's context and
// the fleet coordinator fills in where the shard actually ran.
type shardAttr struct {
	mu   sync.Mutex
	peer string
	exec float64
}

func (a *shardAttr) get() (string, float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peer, a.exec
}

type attrCtxKey struct{}

func withShardAttr(ctx context.Context, a *shardAttr) context.Context {
	return context.WithValue(ctx, attrCtxKey{}, a)
}

// AttributeShard reports where a shard attempt executed and its
// peer-measured execution time. A ShardRunner (the fleet coordinator)
// calls it with the chosen peer URL — or "local" for fallback — so the
// flight recorder and the respeed_fleet_shard_seconds histograms carry
// per-peer attribution. A no-op outside a manager shard attempt.
func AttributeShard(ctx context.Context, peer string, execSeconds float64) {
	a, _ := ctx.Value(attrCtxKey{}).(*shardAttr)
	if a == nil {
		return
	}
	a.mu.Lock()
	a.peer = peer
	a.exec = execSeconds
	a.mu.Unlock()
}

package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
)

// Journal framing: one record per line, `%08x <json>\n`, where the hex
// prefix is the IEEE CRC-32 of the JSON bytes. The CRC makes every
// single-byte corruption detectable; the framing makes a torn final
// write (the only damage a crash between append and fsync can cause)
// distinguishable from corruption of committed records:
//
//   - an invalid FINAL line is a torn tail: the record was never
//     durably committed, so replay drops it and the shard simply
//     re-executes (deterministically) — a clean resume;
//   - an invalid EARLIER line means committed history was damaged:
//     replay reports a typed *CorruptError and never silently drops
//     completed shards.

// recordSubmit/recordShard/recordCancel are the journal record types.
const (
	recordSubmit = "submit"
	recordShard  = "shard"
	recordCancel = "cancel"
)

// record is one journal line.
type record struct {
	T string `json:"t"`
	// Submit fields.
	ID       string    `json:"id,omitempty"`
	Campaign *Campaign `json:"campaign,omitempty"`
	Shards   int       `json:"shards,omitempty"`
	// Shard fields.
	Idx    int             `json:"idx,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// CorruptError reports damage to committed journal history — the case
// that must never be silently repaired, because repairing it would drop
// completed shards.
type CorruptError struct {
	// Path is the journal file.
	Path string
	// Line is the 1-based damaged line.
	Line int
	// Reason describes the damage.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("jobs: journal %s corrupt at line %d: %s", e.Path, e.Line, e.Reason)
}

// journalStats aggregates journal write traffic across one manager's
// journals (exported as counters on /metrics).
type journalStats struct {
	bytes  atomic.Int64
	fsyncs atomic.Int64
}

// journal is an append-only, fsynced record log for one job.
type journal struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	stats *journalStats // may be nil (tests)
}

// createJournal opens a fresh journal file for appending.
func createJournal(path string, stats *journalStats) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: create journal: %w", err)
	}
	return &journal{path: path, f: f, stats: stats}, nil
}

// openJournal reopens an existing journal for appending (resume).
func openJournal(path string, stats *journalStats) (*journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	return &journal{path: path, f: f, stats: stats}, nil
}

// append frames, writes and fsyncs one record. The fsync before
// returning is the durability point: a shard is "completed" only once
// its record survives power loss.
func (j *journal) append(rec record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encode journal record: %w", err)
	}
	line := make([]byte, 0, len(data)+10)
	line = append(line, fmt.Sprintf("%08x ", crc32.ChecksumIEEE(data))...)
	line = append(line, data...)
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("jobs: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("jobs: append journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: sync journal: %w", err)
	}
	if j.stats != nil {
		j.stats.bytes.Add(int64(len(line)))
		j.stats.fsyncs.Add(1)
	}
	return nil
}

// close releases the file handle (idempotent).
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// replayed is the recovered state of one journal.
type replayed struct {
	ID        string
	Campaign  Campaign
	Shards    int
	Done      map[int]json.RawMessage
	Cancelled bool
	// TornTail reports that an incomplete final record was dropped.
	TornTail bool
}

// parseLine decodes one framed line; ok=false means the line is not a
// well-formed committed record (torn or corrupt — the caller decides
// which by position).
func parseLine(line []byte) (record, string, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return record{}, "bad frame (want 8-hex-digit CRC prefix)", false
	}
	crcWant, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return record{}, "unparseable CRC prefix", false
	}
	data := line[9:]
	if crc32.ChecksumIEEE(data) != uint32(crcWant) {
		return record{}, "CRC mismatch", false
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return record{}, fmt.Sprintf("undecodable record: %v", err), false
	}
	return rec, "", true
}

// ReplayJournal reads a job journal back. It returns:
//
//   - (nil, nil) when the journal holds no durably committed submit
//     record (empty file, or a submit torn mid-write): the job never
//     observably existed and the file may be discarded;
//   - (*replayed, nil) on success, with an invalid final line dropped
//     as a torn tail (the in-flight shard re-executes on resume);
//   - (nil, *CorruptError) when a NON-final record is damaged or the
//     record sequence is structurally impossible: committed history was
//     lost, which resume must report rather than paper over.
//
// It never panics on any input.
func ReplayJournal(path string) (*replayed, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("jobs: read journal: %w", err)
	}
	corrupt := func(line int, reason string) (*replayed, error) {
		return nil, &CorruptError{Path: path, Line: line, Reason: reason}
	}

	// Split into lines; a file not ending in '\n' has a torn last line
	// by construction.
	var lines [][]byte
	rest := raw
	for len(rest) > 0 {
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			lines = append(lines, rest) // unterminated tail
			break
		}
		lines = append(lines, rest[:i])
		rest = rest[i+1:]
	}
	if len(lines) == 0 {
		return nil, nil
	}

	var rep *replayed
	for i, line := range lines {
		last := i == len(lines)-1
		rec, reason, ok := parseLine(line)
		if !ok {
			if last {
				if rep != nil {
					rep.TornTail = true
					return rep, nil
				}
				return nil, nil // submit itself was torn
			}
			return corrupt(i+1, reason)
		}
		// Structural validation: violations in a CRC-valid record mean
		// the file is not a journal this code wrote (or interleaved
		// writes were lost) — corruption, not a torn tail... except on
		// the final line, where a valid-CRC-but-misplaced record cannot
		// occur from a torn write and is also corruption.
		switch rec.T {
		case recordSubmit:
			if i != 0 {
				return corrupt(i+1, "submit record after line 1")
			}
			if rec.ID == "" || rec.Campaign == nil || rec.Shards <= 0 {
				return corrupt(i+1, "incomplete submit record")
			}
			norm, err := rec.Campaign.normalize()
			if err != nil {
				return corrupt(i+1, fmt.Sprintf("invalid campaign: %v", err))
			}
			if want := len(norm.planShards()); want != rec.Shards {
				return corrupt(i+1, fmt.Sprintf("shard count %d does not match campaign plan (%d)", rec.Shards, want))
			}
			rep = &replayed{ID: rec.ID, Campaign: norm, Shards: rec.Shards,
				Done: make(map[int]json.RawMessage)}
		case recordShard:
			if rep == nil {
				return corrupt(i+1, "shard record before submit")
			}
			if rec.Idx < 0 || rec.Idx >= rep.Shards {
				return corrupt(i+1, fmt.Sprintf("shard index %d outside [0,%d)", rec.Idx, rep.Shards))
			}
			if len(rec.Result) == 0 {
				return corrupt(i+1, "shard record without result")
			}
			// Duplicate shard records are legal: a resume can re-execute
			// a shard whose record was torn. Results are deterministic,
			// so first-write-wins and last-write-wins agree.
			if _, dup := rep.Done[rec.Idx]; !dup {
				rep.Done[rec.Idx] = rec.Result
			}
		case recordCancel:
			if rep == nil {
				return corrupt(i+1, "cancel record before submit")
			}
			rep.Cancelled = true
		default:
			return corrupt(i+1, fmt.Sprintf("unknown record type %q", rec.T))
		}
	}
	return rep, nil
}

// writeSnapshot atomically persists a finished job's result next to the
// journal: write to a temp file, fsync, rename. After the rename the
// journal is retired; a crash between the two leaves both, and load
// prefers the snapshot.
func writeSnapshot(path string, res Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encode snapshot: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return fmt.Errorf("jobs: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("jobs: publish snapshot: %w", err)
	}
	return nil
}

// readSnapshot loads a finished job's result.
func readSnapshot(path string) (Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Result{}, fmt.Errorf("jobs: read snapshot: %w", err)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return Result{}, fmt.Errorf("jobs: decode snapshot %s: %w", path, err)
	}
	return res, nil
}

// Package jobs is respeed's crash-safe asynchronous campaign subsystem.
//
// A job is a named campaign — a σ1×σ2 grid solve, a ρ-sweep, or a
// Monte-Carlo replication study over one or many platform configs (the
// material behind the paper's tables and figures) — that is too large
// for one synchronous request. The subsystem applies the repo's own
// subject matter to itself, exactly as the checkpoint-restart literature
// prescribes for long-running work:
//
//   - the campaign is sharded into deterministic chunks (Monte-Carlo
//     cells reuse the engine's seed-pinned 64-chunk fan-out, so results
//     are bit-identical for any worker count or interleaving);
//   - a bounded worker pool executes shards with per-shard retry and
//     exponential backoff;
//   - every completed shard is appended to a CRC-framed JSONL journal
//     and fsynced — the "checkpoint" — so a killed process resumes from
//     the journal and re-executes only the shards that were in flight;
//   - a finished job is snapshotted atomically (temp file + rename) and
//     its journal retired.
//
// A job resumed after a crash produces byte-identical results (and an
// identical result hash) to the same job run uninterrupted.
package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"respeed/internal/core"
	"respeed/internal/energy"
	"respeed/internal/engine"
	"respeed/internal/platform"
	"respeed/internal/sim"
	"respeed/internal/spec"
)

// Kind selects the campaign family.
type Kind string

const (
	// KindGrid evaluates the full σ1×σ2 pair grid (the paper's Section
	// 4.2 tables) for every config×ρ cell.
	KindGrid Kind = "grid"
	// KindSweep solves the BiCrit optimum and two-speed gain at every
	// config×ρ cell — a ρ-sweep when Rhos is a dense list.
	KindSweep Kind = "sweep"
	// KindMonteCarlo replicates N pattern simulations per config×ρ cell,
	// sharded on the engine's deterministic chunk fan-out.
	KindMonteCarlo Kind = "montecarlo"
	// KindSpec replicates a declarative scenario spec N times per
	// config, sharded on the engine's scenario chunk fan-out. The spec
	// fixes its own plan, so spec campaigns take no rhos.
	KindSpec Kind = "spec"
)

// maxMonteCarloN caps replications per cell; the full campaign may still
// multiply this across many cells.
const maxMonteCarloN = 10_000_000

// maxSpecN caps spec-campaign replications per config: scenario runs
// drive a real state-carrying workload, so they are orders of magnitude
// more expensive than abstract pattern replications.
const maxSpecN = 100_000

// maxCampaignCells bounds the config×ρ cross product of one campaign.
const maxCampaignCells = 4096

// Campaign is a job specification. It is fully serializable: the journal
// records the normalized campaign verbatim, and a resumed job re-plans
// its shards from that record alone.
type Campaign struct {
	// Name is an optional human-readable label.
	Name string `json:"name,omitempty"`
	// Kind selects the campaign family.
	Kind Kind `json:"kind"`
	// Configs names catalog configurations; empty selects the whole
	// catalog (resolved and pinned at submit time).
	Configs []string `json:"configs,omitempty"`
	// Rhos are the performance bounds to evaluate, one cell per
	// config×ρ combination.
	Rhos []float64 `json:"rhos"`
	// N is the replication count per cell (montecarlo: default 10000;
	// spec: default 100).
	N int `json:"n,omitempty"`
	// Seed is the replication master seed (montecarlo and spec only;
	// default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Spec is the declarative scenario document of a spec campaign.
	Spec *spec.ScenarioSpec `json:"spec,omitempty"`
}

// normalize validates the campaign and pins defaults: empty Configs
// resolves to the full catalog, montecarlo N/Seed get their defaults.
// The returned campaign is what gets journaled, so resume never depends
// on catalog evolution or default drift.
func (c Campaign) normalize() (Campaign, error) {
	if c.Kind != KindSpec && c.Spec != nil {
		return Campaign{}, fmt.Errorf("jobs: spec applies to spec campaigns only")
	}
	switch c.Kind {
	case KindGrid, KindSweep:
		if c.N != 0 || c.Seed != 0 {
			return Campaign{}, fmt.Errorf("jobs: n and seed apply to montecarlo and spec campaigns only")
		}
	case KindMonteCarlo:
		if c.N == 0 {
			c.N = 10_000
		}
		if c.N < 2 || c.N > maxMonteCarloN {
			return Campaign{}, fmt.Errorf("jobs: montecarlo n must be in [2, %d] (got %d)", maxMonteCarloN, c.N)
		}
		if c.Seed == 0 {
			c.Seed = 1
		}
	case KindSpec:
		if c.Spec == nil {
			return Campaign{}, fmt.Errorf("jobs: spec campaign needs a spec document")
		}
		if len(c.Rhos) != 0 {
			return Campaign{}, fmt.Errorf("jobs: rhos do not apply to spec campaigns (the spec fixes its own plan)")
		}
		if err := c.Spec.Validate(); err != nil {
			return Campaign{}, fmt.Errorf("jobs: %w", err)
		}
		if c.N == 0 {
			c.N = 100
		}
		if c.N < 2 || c.N > maxSpecN {
			return Campaign{}, fmt.Errorf("jobs: spec n must be in [2, %d] (got %d)", maxSpecN, c.N)
		}
		if c.Seed == 0 {
			c.Seed = 1
		}
	default:
		return Campaign{}, fmt.Errorf("jobs: unknown campaign kind %q (use grid, sweep, montecarlo or spec)", c.Kind)
	}
	if len(c.Configs) == 0 {
		c.Configs = platform.Names()
	}
	for _, name := range c.Configs {
		cfg, ok := platform.ByName(name)
		if !ok {
			return Campaign{}, fmt.Errorf("jobs: unknown configuration %q", name)
		}
		// A spec must compile for every pinned config at submit time, so
		// a campaign never fails shard-by-shard on a bad combination.
		if c.Kind == KindSpec {
			if _, err := c.Spec.Compile(spec.EnvFor(cfg)); err != nil {
				return Campaign{}, fmt.Errorf("jobs: spec does not compile for %q: %w", name, err)
			}
		}
	}
	if c.Kind == KindSpec {
		if len(c.Configs) > maxCampaignCells {
			return Campaign{}, fmt.Errorf("jobs: campaign spans %d cells, max %d", len(c.Configs), maxCampaignCells)
		}
		return c, nil
	}
	if len(c.Rhos) == 0 {
		return Campaign{}, fmt.Errorf("jobs: campaign needs at least one rho")
	}
	for i, rho := range c.Rhos {
		if math.IsNaN(rho) || math.IsInf(rho, 0) || rho <= 0 {
			return Campaign{}, fmt.Errorf("jobs: rhos[%d] must be a positive finite number (got %g)", i, rho)
		}
	}
	if cells := len(c.Configs) * len(c.Rhos); cells > maxCampaignCells {
		return Campaign{}, fmt.Errorf("jobs: campaign spans %d cells, max %d", cells, maxCampaignCells)
	}
	return c, nil
}

// ShardPlan locates one shard of a campaign. Grid/sweep campaigns have
// one shard per config×ρ cell (Chunk = -1); Monte-Carlo and spec
// campaigns shard each cell into the engine's deterministic chunks, with
// [Lo, Hi) the chunk's replication index range. The type is exported
// (and fully serializable) because the fleet layer ships shards to peer
// daemons over HTTP: a shard is a pure function of (campaign, plan), so
// WHERE it executes never changes the bytes it produces.
type ShardPlan struct {
	Config string  `json:"config"`
	Rho    float64 `json:"rho,omitempty"`
	Chunk  int     `json:"chunk"`
	Lo     int     `json:"lo,omitempty"`
	Hi     int     `json:"hi,omitempty"`
}

// planShards enumerates the campaign's shards in canonical order:
// configs-order × rhos-order × chunk-order. The enumeration is a pure
// function of the normalized campaign, so a resumed job re-derives the
// identical plan.
func (c Campaign) planShards() []ShardPlan {
	var shards []ShardPlan
	for _, cfg := range c.Configs {
		if c.Kind == KindSpec {
			// One cell per config (Rho stays 0 — the spec fixes the
			// plan), sharded into the engine's deterministic chunks.
			chunks := engine.ChunkCount(c.N)
			for ch := 0; ch < chunks; ch++ {
				lo, hi := engine.ChunkBounds(c.N, chunks, ch)
				shards = append(shards, ShardPlan{Config: cfg, Chunk: ch, Lo: lo, Hi: hi})
			}
			continue
		}
		for _, rho := range c.Rhos {
			if c.Kind != KindMonteCarlo {
				shards = append(shards, ShardPlan{Config: cfg, Rho: rho, Chunk: -1})
				continue
			}
			chunks := engine.ChunkCount(c.N)
			for ch := 0; ch < chunks; ch++ {
				lo, hi := engine.ChunkBounds(c.N, chunks, ch)
				shards = append(shards, ShardPlan{Config: cfg, Rho: rho, Chunk: ch, Lo: lo, Hi: hi})
			}
		}
	}
	return shards
}

// ValidateShard checks that sp is one of c's planned shards and returns
// the normalized campaign to execute it under. It is the worker-side
// admission check of the fleet layer: a daemon accepting a remote shard
// must not trust the coordinator's framing, so membership (config, ρ)
// and chunk geometry (chunk index, [Lo, Hi) bounds) are re-derived from
// the campaign itself and compared field by field.
func (c Campaign) ValidateShard(sp ShardPlan) (Campaign, error) {
	norm, err := c.normalize()
	if err != nil {
		return Campaign{}, err
	}
	found := false
	for _, name := range norm.Configs {
		if name == sp.Config {
			found = true
			break
		}
	}
	if !found {
		return Campaign{}, fmt.Errorf("jobs: shard config %q is not in the campaign", sp.Config)
	}
	checkRho := func() error {
		for _, rho := range norm.Rhos {
			if rho == sp.Rho {
				return nil
			}
		}
		return fmt.Errorf("jobs: shard rho %g is not in the campaign", sp.Rho)
	}
	checkChunk := func() error {
		chunks := engine.ChunkCount(norm.N)
		if sp.Chunk < 0 || sp.Chunk >= chunks {
			return fmt.Errorf("jobs: shard chunk %d out of range [0, %d)", sp.Chunk, chunks)
		}
		lo, hi := engine.ChunkBounds(norm.N, chunks, sp.Chunk)
		if sp.Lo != lo || sp.Hi != hi {
			return fmt.Errorf("jobs: shard bounds [%d,%d) do not match chunk %d of n=%d (want [%d,%d))",
				sp.Lo, sp.Hi, sp.Chunk, norm.N, lo, hi)
		}
		return nil
	}
	switch norm.Kind {
	case KindGrid, KindSweep:
		if sp.Chunk != -1 || sp.Lo != 0 || sp.Hi != 0 {
			return Campaign{}, fmt.Errorf("jobs: %s shards carry no chunk range", norm.Kind)
		}
		if err := checkRho(); err != nil {
			return Campaign{}, err
		}
	case KindMonteCarlo:
		if err := checkRho(); err != nil {
			return Campaign{}, err
		}
		if err := checkChunk(); err != nil {
			return Campaign{}, err
		}
	case KindSpec:
		if sp.Rho != 0 {
			return Campaign{}, fmt.Errorf("jobs: spec shards carry no rho (got %g)", sp.Rho)
		}
		if err := checkChunk(); err != nil {
			return Campaign{}, err
		}
	}
	return norm, nil
}

// ExecShard executes one shard of a normalized campaign and returns its
// journal-encoding bytes — exactly the record a local worker would have
// journaled, so a result assembled from remotely executed shards is
// byte-identical to a single-process run. Callers that receive the
// campaign over the network must go through ValidateShard first.
func ExecShard(ctx context.Context, c Campaign, sp ShardPlan) (json.RawMessage, error) {
	sr, err := c.runShard(ctx, sp)
	if err != nil {
		return nil, err
	}
	return json.Marshal(sr)
}

// shardResult is the journaled outcome of one shard. Exactly one of the
// payload fields is set (Infeasible counts as a payload for Monte-Carlo
// shards whose cell admits no plan).
type shardResult struct {
	// Infeasible marks a cell with no feasible speed pair at its ρ.
	Infeasible bool `json:"infeasible,omitempty"`
	// Cell is a grid or sweep cell outcome.
	Cell *CellSolution `json:"cell,omitempty"`
	// Chunk is a Monte-Carlo partial estimate.
	Chunk *engine.ChunkEstimate `json:"chunk,omitempty"`
}

// CellSolution is the solver outcome of one grid/sweep cell.
type CellSolution struct {
	// Best is the energy-minimizing feasible pair.
	Best core.PairResult `json:"best"`
	// Pairs is the full σ1×σ2 grid (grid campaigns only).
	Pairs []core.PairResult `json:"pairs,omitempty"`
	// Gain is the two-speed energy gain over the single-speed optimum
	// (sweep campaigns only).
	Gain *float64 `json:"gain,omitempty"`
}

// cellOf resolves a shard's platform parameters and the process-wide
// precomputed solver grid for them. The config was validated at submit;
// a vanished config (journal from a different build) is reported, not
// assumed. The memoized grid is what keeps a Monte-Carlo cell's 64
// chunk shards (and assemble's final pass) from re-deriving the same
// solve 65 times.
func cellOf(sp ShardPlan) (platform.Config, *core.PairGrid, error) {
	cfg, ok := platform.ByName(sp.Config)
	if !ok {
		return platform.Config{}, nil, fmt.Errorf("jobs: configuration %q not in catalog", sp.Config)
	}
	g, err := core.GridFor(core.FromConfig(cfg), cfg.Processor.Speeds)
	if err != nil {
		return platform.Config{}, nil, err
	}
	return cfg, g, nil
}

// runShard executes one shard. Shards are pure functions of
// (campaign, shard plan): re-executing a shard after a crash or retry
// yields byte-identical journal records. A cancelled ctx aborts a
// Monte-Carlo shard mid-chunk and surfaces the context's error.
func (c Campaign) runShard(ctx context.Context, sp ShardPlan) (shardResult, error) {
	if c.Kind == KindSpec {
		cfg, ok := platform.ByName(sp.Config)
		if !ok {
			return shardResult{}, fmt.Errorf("jobs: configuration %q not in catalog", sp.Config)
		}
		sc, err := c.Spec.Compile(spec.EnvFor(cfg))
		if err != nil {
			return shardResult{}, err
		}
		// The campaign seed is used directly — not a per-cell derivation
		// — so a cell's merged estimate is bit-identical to
		// engine.ReplicateScenario(sc, c.Seed, c.N, ...) run in one
		// piece. Compile already validated the scenario, so the shard
		// skips re-validating it on every chunk.
		ce, err := engine.ReplicateScenarioChunkValidatedCtx(ctx, sc, c.Seed, sp.Lo, sp.Hi)
		if err != nil {
			return shardResult{}, err
		}
		return shardResult{Chunk: &ce}, nil
	}
	cfg, g, err := cellOf(sp)
	if err != nil {
		return shardResult{}, err
	}
	sol, solveErr := g.Solve(sp.Rho)
	switch c.Kind {
	case KindGrid:
		if solveErr != nil && solveErr != core.ErrInfeasible {
			return shardResult{}, solveErr
		}
		cell := &CellSolution{Best: sol.Best, Pairs: sol.Pairs}
		return shardResult{Infeasible: solveErr != nil, Cell: cell}, nil
	case KindSweep:
		if solveErr == core.ErrInfeasible {
			return shardResult{Infeasible: true}, nil
		}
		if solveErr != nil {
			return shardResult{}, solveErr
		}
		gain, err := g.TwoSpeedGain(sp.Rho)
		if err != nil {
			return shardResult{}, err
		}
		return shardResult{Cell: &CellSolution{Best: sol.Best, Gain: &gain}}, nil
	case KindMonteCarlo:
		if solveErr == core.ErrInfeasible {
			return shardResult{Infeasible: true}, nil
		}
		if solveErr != nil {
			return shardResult{}, solveErr
		}
		p := g.Params()
		plan := sim.Plan{W: sol.Best.W, Sigma1: sol.Best.Sigma1, Sigma2: sol.Best.Sigma2}
		costs := sim.Costs{C: p.C, V: p.V, R: p.R, LambdaS: p.Lambda}
		model := energy.Model{Kappa: cfg.Processor.Kappa, Pidle: cfg.Processor.Pidle, Pio: cfg.Pio}
		seed := c.cellSeed(sp.Config, sp.Rho)
		ce, err := engine.ReplicatePatternChunkCtx(ctx, plan, costs, model, seed, sp.Chunk, sp.Lo, sp.Hi)
		if err != nil {
			return shardResult{}, err
		}
		return shardResult{Chunk: &ce}, nil
	default:
		return shardResult{}, fmt.Errorf("jobs: unknown campaign kind %q", c.Kind)
	}
}

// cellSeed derives the per-cell Monte-Carlo seed from the campaign seed
// and the cell coordinates with FNV-64a, so distinct cells draw
// independent substreams while staying deterministic in the spec.
func (c Campaign) cellSeed(config string, rho float64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", c.Seed, config, canonicalFloat(rho))
	return h.Sum64()
}

// canonicalFloat renders a float in shortest round-trip form, the same
// canonicalization the serve cache uses.
func canonicalFloat(x float64) string {
	b, _ := json.Marshal(x)
	return string(b)
}

// CellOutcome is one config×ρ cell of a finished campaign.
type CellOutcome struct {
	Config     string  `json:"config"`
	Rho        float64 `json:"rho"`
	Infeasible bool    `json:"infeasible,omitempty"`
	// Best/Pairs/Gain carry solver outcomes (grid and sweep campaigns,
	// and the plan backing a Monte-Carlo cell).
	Best  *core.PairResult  `json:"best,omitempty"`
	Pairs []core.PairResult `json:"pairs,omitempty"`
	Gain  *float64          `json:"gain,omitempty"`
	// Estimate is the merged Monte-Carlo aggregate (montecarlo only).
	Estimate *engine.Estimate `json:"estimate,omitempty"`
}

// Result is a finished campaign: every cell in canonical order plus a
// content hash over the cells, so two runs of the same campaign —
// interrupted or not — can be compared by one string.
type Result struct {
	ID       string        `json:"id"`
	Campaign Campaign      `json:"campaign"`
	Cells    []CellOutcome `json:"cells"`
	// Hash is the FNV-64a digest of the canonical JSON encoding of
	// Cells, in hex.
	Hash string `json:"hash"`
}

// assemble folds the journaled shard results into the final Result.
// done maps shard index → journaled record bytes; every shard must be
// present. Decoding ALWAYS goes through the journal encoding (even for
// never-crashed jobs the manager journals first and assembles from the
// journal bytes), so interrupted and uninterrupted runs share one code
// path — Welford JSON round-trips losslessly, making the two
// byte-identical.
func (c Campaign) assemble(id string, shards []ShardPlan, done map[int]json.RawMessage) (Result, error) {
	type cellKey struct {
		config string
		rho    float64
	}
	results := make(map[int]shardResult, len(shards))
	for i := range shards {
		raw, ok := done[i]
		if !ok {
			return Result{}, fmt.Errorf("jobs: shard %d missing from journal", i)
		}
		var sr shardResult
		if err := json.Unmarshal(raw, &sr); err != nil {
			return Result{}, fmt.Errorf("jobs: decode shard %d: %w", i, err)
		}
		results[i] = sr
	}

	// Group Monte-Carlo chunks per cell, preserving shard (= chunk)
	// order within each cell.
	chunksByCell := make(map[cellKey][]engine.ChunkEstimate)
	for i, sp := range shards {
		if sr := results[i]; sr.Chunk != nil {
			k := cellKey{sp.Config, sp.Rho}
			chunksByCell[k] = append(chunksByCell[k], *sr.Chunk)
		}
	}

	var cells []CellOutcome
	seen := make(map[cellKey]bool)
	for i, sp := range shards {
		k := cellKey{sp.Config, sp.Rho}
		if seen[k] {
			continue
		}
		seen[k] = true
		sr := results[i]
		out := CellOutcome{Config: sp.Config, Rho: sp.Rho, Infeasible: sr.Infeasible}
		switch c.Kind {
		case KindGrid:
			if sr.Cell != nil {
				best := sr.Cell.Best
				out.Best, out.Pairs = &best, sr.Cell.Pairs
			}
		case KindSweep:
			if sr.Cell != nil {
				best := sr.Cell.Best
				out.Best, out.Gain = &best, sr.Cell.Gain
			}
		case KindSpec:
			est := engine.MergeChunkEstimates(c.Spec.TotalWork, c.N, chunksByCell[k])
			out.Estimate = &est
		case KindMonteCarlo:
			if !sr.Infeasible {
				_, g, err := cellOf(sp)
				if err != nil {
					return Result{}, err
				}
				sol, err := g.Solve(sp.Rho)
				if err != nil {
					return Result{}, fmt.Errorf("jobs: re-solve cell %s ρ=%g: %w", sp.Config, sp.Rho, err)
				}
				best := sol.Best
				est := engine.MergeChunkEstimates(best.W, c.N, chunksByCell[k])
				out.Best, out.Estimate = &best, &est
			}
		}
		cells = append(cells, out)
	}

	hash, err := hashCells(cells)
	if err != nil {
		return Result{}, err
	}
	return Result{ID: id, Campaign: c, Cells: cells, Hash: hash}, nil
}

// hashCells digests the canonical JSON of the cell outcomes.
func hashCells(cells []CellOutcome) (string, error) {
	data, err := json.Marshal(cells)
	if err != nil {
		return "", fmt.Errorf("jobs: hash result: %w", err)
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// sortedKinds lists the valid campaign kinds (for error messages and
// discovery endpoints).
func sortedKinds() []string {
	kinds := []string{string(KindGrid), string(KindSweep), string(KindMonteCarlo), string(KindSpec)}
	sort.Strings(kinds)
	return kinds
}

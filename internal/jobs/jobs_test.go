package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"respeed/internal/core"
	"respeed/internal/energy"
	"respeed/internal/platform"
	"respeed/internal/sim"
)

func waitDone(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v (state %s, %d/%d shards)", id, err, st.State, st.ShardsDone, st.ShardsTotal)
	}
	return st
}

func mustOpen(t *testing.T, opts Options) *Manager {
	t.Helper()
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("open manager: %v", err)
	}
	return m
}

func TestGridCampaignLifecycle(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir()})
	defer m.Close()

	st, err := m.Submit(Campaign{
		Name:    "tables",
		Kind:    KindGrid,
		Configs: []string{"Hera/XScale", "Atlas/Crusoe"},
		Rhos:    []float64{3, 5},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ShardsTotal != 4 {
		t.Fatalf("grid over 2 configs × 2 rhos should have 4 shards, got %d", st.ShardsTotal)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateDone || st.ShardsDone != 4 || st.Hash == "" {
		t.Fatalf("unexpected terminal status %+v", st)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("want 4 cells, got %d", len(res.Cells))
	}
	for _, cell := range res.Cells {
		if cell.Infeasible || cell.Best == nil || len(cell.Pairs) == 0 {
			t.Fatalf("grid cell %s ρ=%g incomplete: %+v", cell.Config, cell.Rho, cell)
		}
	}
	// The cell solution must match a direct solve.
	cfg, _ := platform.ByName("Hera/XScale")
	sol, err := core.FromConfig(cfg).Solve(cfg.Processor.Speeds, 3)
	if err != nil {
		t.Fatalf("direct solve: %v", err)
	}
	if *res.Cells[0].Best != sol.Best {
		t.Fatalf("cell best %+v != direct solve %+v", *res.Cells[0].Best, sol.Best)
	}
	if _, err := m.Status("j999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: got %v", err)
	}
}

func TestSweepCampaignInfeasibleCells(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir()})
	defer m.Close()

	// ρ=0.9 is below 1/σmax for every catalog processor: infeasible.
	st, err := m.Submit(Campaign{
		Kind:    KindSweep,
		Configs: []string{"Hera/XScale"},
		Rhos:    []float64{0.9, 3},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cells[0].Infeasible || res.Cells[0].Gain != nil {
		t.Fatalf("ρ=0.9 cell should be infeasible: %+v", res.Cells[0])
	}
	if res.Cells[1].Infeasible || res.Cells[1].Gain == nil || res.Cells[1].Best == nil {
		t.Fatalf("ρ=3 cell should carry best+gain: %+v", res.Cells[1])
	}
}

// TestMonteCarloMatchesReplicateParallel proves a campaign's merged
// estimate is bit-identical to the in-process chunked fan-out with the
// same derived seed — the shard layer adds no statistical drift.
func TestMonteCarloMatchesReplicateParallel(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir()})
	defer m.Close()

	camp := Campaign{Kind: KindMonteCarlo, Configs: []string{"Hera/XScale"}, Rhos: []float64{3}, N: 5000, Seed: 11}
	st, err := m.Submit(camp)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	cell := res.Cells[0]
	if cell.Estimate == nil || cell.Best == nil {
		t.Fatalf("montecarlo cell incomplete: %+v", cell)
	}

	cfg, _ := platform.ByName("Hera/XScale")
	p := core.FromConfig(cfg)
	sol, err := p.Solve(cfg.Processor.Speeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan := sim.Plan{W: sol.Best.W, Sigma1: sol.Best.Sigma1, Sigma2: sol.Best.Sigma2}
	costs := sim.Costs{C: p.C, V: p.V, R: p.R, LambdaS: p.Lambda}
	model := energy.Model{Kappa: cfg.Processor.Kappa, Pidle: cfg.Processor.Pidle, Pio: cfg.Pio}
	norm, err := camp.normalize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.ReplicateParallel(plan, costs, model, norm.cellSeed("Hera/XScale", 3), 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*cell.Estimate, want) {
		t.Fatalf("campaign estimate diverged from direct replication:\ngot  %+v\nwant %+v", *cell.Estimate, want)
	}
}

// runToCompletion submits camp into a fresh manager over dir and returns
// the finished result.
func runToCompletion(t *testing.T, dir string, camp Campaign) Result {
	t.Helper()
	m := mustOpen(t, Options{Dir: dir})
	defer m.Close()
	st, err := m.Submit(camp)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// interruptAndResume submits camp, hard-stops the manager mid-run (no
// terminal state, like a crash that still let in-flight journal appends
// land), reopens the directory and returns the resumed job's result plus
// how many shards were done at the interruption point.
func interruptAndResume(t *testing.T, camp Campaign) (Result, int) {
	t.Helper()
	dir := t.TempDir()
	m1 := mustOpen(t, Options{Dir: dir, Workers: 2})
	m1.testShardDelay = func() { time.Sleep(2 * time.Millisecond) }
	st, err := m1.Submit(camp)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	id := st.ID
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := m1.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if cur.ShardsDone >= 3 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before interruption (%d shards) — increase campaign size", cur.ShardsTotal)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	m1.Close() // hard stop: job left non-terminal, journal on disk
	interrupted, err := m1.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if interrupted.State.Terminal() {
		t.Fatalf("job reached terminal state %s before interruption", interrupted.State)
	}
	if interrupted.ShardsDone >= interrupted.ShardsTotal {
		t.Fatalf("all %d shards done before interruption — nothing left to resume", interrupted.ShardsTotal)
	}

	m2 := mustOpen(t, Options{Dir: dir})
	defer m2.Close()
	st2 := waitDone(t, m2, id)
	if st2.State != StateDone {
		t.Fatalf("resumed job ended %s: %s", st2.State, st2.Error)
	}
	res, err := m2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	return res, interrupted.ShardsDone
}

func cellsJSON(t *testing.T, r Result) string {
	t.Helper()
	b, err := json.Marshal(r.Cells)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestResumeDeterminismMonteCarlo is the acceptance property for the
// montecarlo kind: interrupted+resumed == uninterrupted, byte for byte.
func TestResumeDeterminismMonteCarlo(t *testing.T) {
	camp := Campaign{Kind: KindMonteCarlo, Configs: []string{"Hera/XScale"}, Rhos: []float64{3, 4}, N: 200_000, Seed: 7}
	straight := runToCompletion(t, t.TempDir(), camp)
	resumed, doneAtKill := interruptAndResume(t, camp)
	t.Logf("interrupted after %d/%d shards", doneAtKill, len(resumed.Campaign.planShards()))
	if resumed.Hash != straight.Hash {
		t.Fatalf("resume changed result hash: %s != %s", resumed.Hash, straight.Hash)
	}
	if got, want := cellsJSON(t, resumed), cellsJSON(t, straight); got != want {
		t.Fatalf("resume changed result cells:\ngot  %s\nwant %s", got, want)
	}
}

// TestResumeDeterminismGrid is the same property for grid solves.
func TestResumeDeterminismGrid(t *testing.T) {
	camp := Campaign{Kind: KindGrid, Rhos: []float64{2, 3, 4, 5}} // all 8 catalog configs × 4 ρ = 32 shards
	straight := runToCompletion(t, t.TempDir(), camp)
	resumed, doneAtKill := interruptAndResume(t, camp)
	t.Logf("interrupted after %d/32 shards", doneAtKill)
	if resumed.Hash != straight.Hash {
		t.Fatalf("resume changed result hash: %s != %s", resumed.Hash, straight.Hash)
	}
	if got, want := cellsJSON(t, resumed), cellsJSON(t, straight); got != want {
		t.Fatalf("resume changed result cells:\ngot  %s\nwant %s", got, want)
	}
}

func TestCancelIsJournaledAndSticky(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, Options{Dir: dir, Workers: 1})
	m.testShardDelay = func() { time.Sleep(5 * time.Millisecond) }
	st, err := m.Submit(Campaign{Kind: KindMonteCarlo, Configs: []string{"Hera/XScale"}, Rhos: []float64{3}, N: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	fin := waitDone(t, m, st.ID)
	if fin.State != StateCancelled {
		t.Fatalf("state %s after cancel", fin.State)
	}
	if _, err := m.Result(st.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("result of cancelled job: %v", err)
	}
	// Idempotent.
	if st2, err := m.Cancel(st.ID); err != nil || st2.State != StateCancelled {
		t.Fatalf("re-cancel: %v %+v", err, st2)
	}
	m.Close()

	// A restart must not resurrect the cancelled job.
	m2 := mustOpen(t, Options{Dir: dir})
	defer m2.Close()
	st3, err := m2.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != StateCancelled {
		t.Fatalf("cancelled job resurrected as %s", st3.State)
	}
}

func TestShardRetrySucceedsAfterTransientFailures(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir(), ShardRetries: 3, RetryBackoff: time.Millisecond})
	defer m.Close()
	var failures atomic.Int64
	m.opts.BeforeShard = func(jobID string, shard, attempt int) error {
		if shard == 0 && attempt < 3 {
			failures.Add(1)
			return fmt.Errorf("injected transient failure (attempt %d)", attempt)
		}
		return nil
	}
	st, err := m.Submit(Campaign{Kind: KindSweep, Configs: []string{"Hera/XScale"}, Rhos: []float64{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if failures.Load() != 2 {
		t.Fatalf("expected 2 injected failures before success, saw %d", failures.Load())
	}
}

func TestShardFailureFailsJobAfterRetries(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir(), ShardRetries: 2, RetryBackoff: time.Millisecond})
	defer m.Close()
	m.opts.BeforeShard = func(jobID string, shard, attempt int) error {
		if shard == 1 {
			return errors.New("injected permanent failure")
		}
		return nil
	}
	st, err := m.Submit(Campaign{Kind: KindSweep, Configs: []string{"Hera/XScale"}, Rhos: []float64{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateFailed {
		t.Fatalf("job ended %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "injected permanent failure") {
		t.Fatalf("error should name the cause, got %q", st.Error)
	}
}

func TestRetentionEvictsOldestFinished(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir(), MaxJobs: 2})
	defer m.Close()
	quick := Campaign{Kind: KindSweep, Configs: []string{"Hera/XScale"}, Rhos: []float64{3}}
	st1, err := m.Submit(quick)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st1.ID)
	st2, err := m.Submit(quick)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st2.ID)
	st3, err := m.Submit(quick)
	if err != nil {
		t.Fatalf("submit over cap should evict, got %v", err)
	}
	waitDone(t, m, st3.ID)
	if _, err := m.Status(st1.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest finished job should be evicted, got %v", err)
	}
	if len(m.List()) != 2 {
		t.Fatalf("retained %d jobs, want 2", len(m.List()))
	}
}

func TestSubscribeStreamsProgressToTerminal(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir(), Workers: 1})
	defer m.Close()
	st, err := m.Submit(Campaign{Kind: KindGrid, Configs: []string{"Hera/XScale"}, Rhos: []float64{3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var last Event
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				if last.State != StateDone || last.ShardsDone != 3 {
					t.Fatalf("stream ended at %+v", last)
				}
				return
			}
			if ev.JobID != st.ID || ev.ShardsTotal != 3 {
				t.Fatalf("bad event %+v", ev)
			}
			last = ev
		case <-deadline:
			t.Fatalf("stream did not terminate; last %+v", last)
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir()})
	defer m.Close()
	for name, c := range map[string]Campaign{
		"unknown kind":    {Kind: "banana", Rhos: []float64{3}},
		"no rhos":         {Kind: KindGrid},
		"bad rho":         {Kind: KindGrid, Rhos: []float64{-1}},
		"unknown config":  {Kind: KindGrid, Configs: []string{"Cray/YMP"}, Rhos: []float64{3}},
		"n on grid":       {Kind: KindGrid, Rhos: []float64{3}, N: 100},
		"n too small":     {Kind: KindMonteCarlo, Rhos: []float64{3}, N: 1},
		"n too large":     {Kind: KindMonteCarlo, Rhos: []float64{3}, N: 20_000_000},
	} {
		if _, err := m.Submit(c); err == nil {
			t.Errorf("%s: submit accepted invalid campaign", name)
		}
	}
	if len(m.List()) != 0 {
		t.Fatalf("invalid submissions must not create jobs, have %d", len(m.List()))
	}
}

func TestStatsGauges(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir()})
	defer m.Close()
	st, err := m.Submit(Campaign{Kind: KindSweep, Configs: []string{"Hera/XScale"}, Rhos: []float64{3}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, st.ID)
	s := m.Stats()
	if s.Done != 1 || s.ShardsExecuted != 1 {
		t.Fatalf("stats %+v, want 1 done / 1 shard", s)
	}
}

package jobs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunShardHonorsContext pins the mid-chunk cancellation contract at
// the shard level: a Monte-Carlo shard under a cancelled context
// returns the context's error promptly instead of simulating its whole
// [Lo, Hi) range.
func TestRunShardHonorsContext(t *testing.T) {
	camp, err := Campaign{Kind: KindMonteCarlo, Configs: []string{"Hera/XScale"},
		Rhos: []float64{3}, N: 10_000_000}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	shards := camp.planShards()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = camp.runShard(ctx, shards[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled shard took %v to return", d)
	}
	// Grid and sweep shards are pure solves (microseconds) — they ignore
	// the context and must still succeed, so resume semantics for them
	// never depend on cancellation timing.
	gridCamp, err := Campaign{Kind: KindGrid, Configs: []string{"Hera/XScale"}, Rhos: []float64{3}}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gridCamp.runShard(ctx, gridCamp.planShards()[0]); err != nil {
		t.Fatalf("grid shard under cancelled ctx: %v", err)
	}
}

// TestCancelAbortsInFlightShards submits a Monte-Carlo campaign big
// enough to run for many seconds uncancelled, cancels it immediately,
// and requires the terminal state well before the uncancelled runtime —
// the per-job context must abort dispatched shards mid-chunk, not let
// them drain naturally.
func TestCancelAbortsInFlightShards(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir(), Workers: 2})
	defer m.Close()
	st, err := m.Submit(Campaign{Kind: KindMonteCarlo, Configs: []string{"Hera/XScale"},
		Rhos: []float64{3, 4, 5, 6}, N: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// Let dispatch actually start some shards.
	time.Sleep(10 * time.Millisecond)
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fin, err := m.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait after cancel: %v (state %s)", err, fin.State)
	}
	if fin.State != StateCancelled {
		t.Fatalf("state %s after cancel", fin.State)
	}
	if d := time.Since(start); d > 15*time.Second {
		t.Fatalf("cancel took %v to drain in-flight shards", d)
	}
}

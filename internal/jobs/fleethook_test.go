package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// The ShardRunner hook is the seam the fleet coordinator plugs into:
// these tests pin its contract — every shard flows through it with the
// normalized campaign and its planned shard, the returned bytes are
// journaled verbatim (so the result hash is placement-independent), and
// errors implementing RetryHint stretch the retry backoff with the
// one-second clamp.

func hookCampaign() Campaign {
	return Campaign{
		Name:    "hook-test",
		Kind:    KindMonteCarlo,
		Configs: []string{"Hera/XScale"},
		Rhos:    []float64{3},
		N:       128,
		Seed:    42,
	}
}

func TestShardRunnerHookPreservesHash(t *testing.T) {
	var calls atomic.Int64
	hooked, err := Open(Options{
		Dir: t.TempDir(),
		ShardRunner: func(ctx context.Context, c Campaign, sp ShardPlan, shard, attempt int) (json.RawMessage, error) {
			calls.Add(1)
			if got, want := sp, c.planShards()[shard]; got != want {
				t.Errorf("shard %d: plan %+v, want %+v", shard, got, want)
			}
			// Stand-in for a remote peer: execute elsewhere, return bytes.
			return ExecShard(ctx, c, sp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hooked.Close()
	st, err := hooked.Submit(hookCampaign())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fin, err := hooked.Wait(ctx, st.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("hooked run: %v (state %s, %s)", err, fin.State, fin.Error)
	}
	if got := calls.Load(); got != int64(fin.ShardsTotal) {
		t.Errorf("runner called %d times, want %d (every shard)", got, fin.ShardsTotal)
	}

	local, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	lst, err := local.Submit(hookCampaign())
	if err != nil {
		t.Fatal(err)
	}
	lfin, err := local.Wait(ctx, lst.ID)
	if err != nil || lfin.State != StateDone {
		t.Fatalf("local run: %v", err)
	}
	if fin.Hash != lfin.Hash {
		t.Errorf("hooked hash %s != local hash %s: placement changed the result", fin.Hash, lfin.Hash)
	}
}

// hintErr is a shard error carrying an explicit retry-after delay, the
// shape the fleet coordinator's BusyError has.
type hintErr struct{ d time.Duration }

func (e hintErr) Error() string             { return "peer busy" }
func (e hintErr) RetryAfter() time.Duration { return e.d }

func TestRetryHintStretchesAndClampsBackoff(t *testing.T) {
	camp := Campaign{
		Name:    "hint-test",
		Kind:    KindSweep,
		Configs: []string{"Hera/XScale"},
		Rhos:    []float64{3},
	}
	var calls atomic.Int64
	m, err := Open(Options{
		Dir:          t.TempDir(),
		RetryBackoff: time.Millisecond,
		ShardRunner: func(ctx context.Context, c Campaign, sp ShardPlan, shard, attempt int) (json.RawMessage, error) {
			if calls.Add(1) == 1 {
				// A 10ms hint must be clamped UP to the 1s floor — a
				// sub-second Retry-After must not become a hot loop.
				return nil, hintErr{d: 10 * time.Millisecond}
			}
			return ExecShard(ctx, c, sp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	start := time.Now()
	st, err := m.Submit(camp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fin, err := m.Wait(ctx, st.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("job: %v (state %s, %s)", err, fin.State, fin.Error)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("runner called %d times, want 2 (busy, then success)", got)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("job finished in %s: the 1s backoff clamp was not honored", elapsed)
	}
}

func TestRetryHintInterface(t *testing.T) {
	// The manager discovers hints through errors.As on the chain, so a
	// wrapped hint still counts.
	err := errors.Join(errors.New("dispatch failed"), hintErr{d: 3 * time.Second})
	var hint RetryHint
	if !errors.As(err, &hint) || hint.RetryAfter() != 3*time.Second {
		t.Error("wrapped RetryHint not discovered via errors.As")
	}
}

package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// The crash-resume e2e re-executes this test binary as a worker process
// (TestMain dispatches on the env var), SIGKILLs it mid-campaign, and
// restarts it over the same journal directory. The resumed run must
// produce a byte-identical result to an uninterrupted run — the
// strongest form of the subsystem's checkpoint-and-re-execute claim.

const helperEnv = "RESPEED_JOBS_HELPER_DIR"

func TestMain(m *testing.M) {
	if dir := os.Getenv(helperEnv); dir != "" {
		os.Exit(helperMain(dir))
	}
	os.Exit(m.Run())
}

// crashCampaign is the workload under test: a single Monte-Carlo cell
// big enough to spread over all 64 chunk shards for a second or two.
func crashCampaign() Campaign {
	return Campaign{
		Name:    "crash-resume-e2e",
		Kind:    KindMonteCarlo,
		Configs: []string{"Hera/XScale"},
		Rhos:    []float64{3},
		N:       10_000_000,
		Seed:    99,
	}
}

// helperMain is the worker process: open the directory (resuming any
// journaled job), submit the campaign if this is a fresh directory, and
// run everything to completion.
func helperMain(dir string) int {
	m, err := Open(Options{Dir: dir, Workers: 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: open: %v\n", err)
		return 1
	}
	defer m.Close()
	if len(m.List()) == 0 {
		if _, err := m.Submit(crashCampaign()); err != nil {
			fmt.Fprintf(os.Stderr, "helper: submit: %v\n", err)
			return 1
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, st := range m.List() {
		fin, err := m.Wait(ctx, st.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "helper: wait %s: %v\n", st.ID, err)
			return 1
		}
		if fin.State != StateDone {
			fmt.Fprintf(os.Stderr, "helper: job %s ended %s: %s\n", st.ID, fin.State, fin.Error)
			return 1
		}
		fmt.Printf("done %s hash=%s\n", fin.ID, fin.Hash)
	}
	return 0
}

// journalShardRecords counts durable shard records in a job journal.
func journalShardRecords(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return bytes.Count(data, []byte(`"t":"shard"`))
}

// TestCrashResumeSIGKILL is the e2e acceptance test: SIGKILL the worker
// process mid-campaign, restart it, and require the resumed job's
// result (hash and full cell bytes) to match an uninterrupted run.
func TestCrashResumeSIGKILL(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX-only")
	}
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same campaign, uninterrupted, in-process.
	straight := runToCompletion(t, t.TempDir(), crashCampaign())

	dir := t.TempDir()
	journalPath := filepath.Join(dir, "j000001.journal")
	snapPath := filepath.Join(dir, "j000001.json")

	// First worker: start, wait for ≥5 durable shard records, SIGKILL.
	first := exec.Command(exe, "-test.run", "^TestMain$")
	first.Env = append(os.Environ(), helperEnv+"="+dir)
	var firstOut bytes.Buffer
	first.Stdout, first.Stderr = &firstOut, &firstOut
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- first.Wait() }()
	killed := false
	deadline := time.Now().Add(2 * time.Minute)
poll:
	for {
		select {
		case <-exited:
			break poll // finished before we could kill it — see below
		default:
		}
		if journalShardRecords(journalPath) >= 5 {
			if err := first.Process.Kill(); err != nil {
				t.Fatalf("kill: %v", err)
			}
			killed = true
			<-exited
			break poll
		}
		if time.Now().After(deadline) {
			first.Process.Kill()
			t.Fatalf("worker made no progress; output:\n%s", firstOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	if killed {
		if _, err := os.Stat(snapPath); err == nil {
			t.Fatal("snapshot exists right after SIGKILL — kill landed too late to exercise resume")
		}
		done := journalShardRecords(journalPath)
		if done < 5 || done >= 64 {
			t.Fatalf("kill landed outside the campaign (%d/64 shards durable)", done)
		}
		t.Logf("SIGKILLed worker with %d/64 shards durable", done)
	} else {
		t.Log("worker finished before the kill landed; asserting plain determinism instead")
	}

	// Second worker: must resume from the journal and finish.
	second := exec.Command(exe, "-test.run", "^TestMain$")
	second.Env = append(os.Environ(), helperEnv+"="+dir)
	out, err := second.CombinedOutput()
	if err != nil {
		t.Fatalf("resumed worker failed: %v\n%s", err, out)
	}

	res, err := readSnapshot(snapPath)
	if err != nil {
		t.Fatalf("read resumed snapshot: %v", err)
	}
	if _, err := os.Stat(journalPath); !os.IsNotExist(err) {
		t.Errorf("journal should be retired after completion (stat err=%v)", err)
	}
	if res.Hash != straight.Hash {
		t.Fatalf("resumed hash %s != uninterrupted hash %s", res.Hash, straight.Hash)
	}
	got, err := json.Marshal(res.Cells)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(straight.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed cells diverge from uninterrupted run:\ngot  %s\nwant %s", got, want)
	}
}

package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

func TestFlightRecorderCoversEveryShard(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, Options{Dir: dir})
	defer m.Close()

	st, err := m.Submit(Campaign{
		Name: "trace-grid", Kind: KindGrid,
		Configs: []string{"Hera/XScale", "Atlas/Crusoe"},
		Rhos:    []float64{3, 5},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st = waitDone(t, m, st.ID)

	jt, err := m.Trace(st.ID)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if jt.JobID != st.ID || jt.State != StateDone {
		t.Fatalf("trace header = %+v", jt)
	}
	if len(jt.Shards) != st.ShardsTotal {
		t.Fatalf("timeline covers %d shards, want %d (100%%)", len(jt.Shards), st.ShardsTotal)
	}
	seen := make(map[int]bool)
	for _, e := range jt.Shards {
		if !e.OK || e.Peer != "local" || e.Attempt != 1 {
			t.Errorf("entry %+v: want ok local first-attempt", e)
		}
		if e.ResultBytes <= 0 {
			t.Errorf("shard %d: result bytes = %d, want > 0", e.Shard, e.ResultBytes)
		}
		if e.ExecSeconds <= 0 || e.DispatchSeconds <= 0 {
			t.Errorf("shard %d: zero durations: %+v", e.Shard, e)
		}
		seen[e.Shard] = true
	}
	if len(seen) != st.ShardsTotal {
		t.Errorf("timeline has duplicate shard entries: %d unique of %d", len(seen), st.ShardsTotal)
	}

	if _, err := m.Trace("j999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job trace: got %v", err)
	}

	// The sidecar survives a manager restart: a reopened directory must
	// still serve the done job's full timeline.
	m.Close()
	m2 := mustOpen(t, Options{Dir: dir})
	defer m2.Close()
	jt2, err := m2.Trace(st.ID)
	if err != nil {
		t.Fatalf("Trace after reopen: %v", err)
	}
	if len(jt2.Shards) != st.ShardsTotal {
		t.Errorf("reloaded timeline covers %d shards, want %d", len(jt2.Shards), st.ShardsTotal)
	}
}

func TestFlightRecorderAttributionAndRetryCause(t *testing.T) {
	m := mustOpen(t, Options{
		Dir:          t.TempDir(),
		RetryBackoff: 1, // effectively immediate
		ShardRunner: func(ctx context.Context, c Campaign, sp ShardPlan, shard, attempt int) (json.RawMessage, error) {
			if attempt == 1 {
				return nil, fmt.Errorf("synthetic peer outage")
			}
			AttributeShard(ctx, "http://worker-7:8941", 0.125)
			raw, err := c.runShard(ctx, sp)
			if err != nil {
				return nil, err
			}
			return json.Marshal(raw)
		},
	})
	defer m.Close()

	st, err := m.Submit(Campaign{
		Name: "trace-retry", Kind: KindGrid,
		Configs: []string{"Hera/XScale"}, Rhos: []float64{3},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job state = %s, want done", st.State)
	}
	jt, err := m.Trace(st.ID)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if len(jt.Shards) != 1 {
		t.Fatalf("timeline = %+v, want one entry", jt.Shards)
	}
	e := jt.Shards[0]
	if e.Peer != "http://worker-7:8941" {
		t.Errorf("peer = %q, want the runner-attributed URL", e.Peer)
	}
	if e.ExecSeconds != 0.125 {
		t.Errorf("exec seconds = %g, want the peer-reported 0.125", e.ExecSeconds)
	}
	if e.Attempt != 2 || e.RetryCause != "synthetic peer outage" {
		t.Errorf("attempt/cause = %d/%q, want 2/synthetic peer outage", e.Attempt, e.RetryCause)
	}
}

func TestAttributeShardOutsideAttemptIsNoop(t *testing.T) {
	AttributeShard(context.Background(), "http://nowhere", 1) // must not panic
}

package jobs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"respeed/internal/obs"
)

// TestManagerObservability exercises the telemetry surface end to end:
// registry series, journal counters, shard latency histogram, shard
// spans and structured logs.
func TestManagerObservability(t *testing.T) {
	var logBuf bytes.Buffer
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16)
	m := mustOpen(t, Options{
		Dir:      t.TempDir(),
		Logger:   obs.NewLogger(&logBuf, "info", "text"),
		Tracer:   tracer,
		Registry: reg,
	})
	defer m.Close()

	st, err := m.Submit(Campaign{Kind: KindSweep, Configs: []string{"Hera/XScale"}, Rhos: []float64{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	var expo bytes.Buffer
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(expo.Bytes())
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, expo.String())
	}
	if v, err := exp.Value("respeed_jobs_shards_executed_total", nil); err != nil || v < 2 {
		t.Errorf("shards_executed = %v (%v), want ≥ 2", v, err)
	}
	if v, err := exp.Value("respeed_jobs_current", map[string]string{"state": "done"}); err != nil || v != 1 {
		t.Errorf("jobs_current{done} = %v (%v), want 1", v, err)
	}
	if v, err := exp.Value("respeed_jobs_journal_fsyncs_total", nil); err != nil || v < 3 {
		t.Errorf("journal_fsyncs = %v (%v), want ≥ 3 (submit + 2 shards)", v, err)
	}
	if v, err := exp.Value("respeed_jobs_shard_duration_seconds_count", nil); err != nil || v < 2 {
		t.Errorf("shard_duration count = %v (%v), want ≥ 2", v, err)
	}

	stats := m.Stats()
	if stats.JournalBytes <= 0 || stats.JournalFsyncs < 3 || stats.ShardRetries != 0 {
		t.Errorf("Stats journal fields = %+v", stats)
	}

	// One root span per job run, with one child span per shard.
	deadline := time.Now().Add(2 * time.Second)
	var roots []obs.SpanSnapshot
	for time.Now().Before(deadline) {
		roots = tracer.Roots()
		if len(roots) == 1 && len(roots[0].Children) == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(roots) != 1 {
		t.Fatalf("tracer roots = %d, want 1", len(roots))
	}
	if roots[0].Name != "job" || roots[0].Attrs["job"] != st.ID {
		t.Errorf("root span = %+v", roots[0])
	}
	if len(roots[0].Children) != 2 {
		t.Errorf("shard spans = %d, want 2", len(roots[0].Children))
	}

	logs := logBuf.String()
	for _, want := range []string{"job submitted", "job done", st.ID} {
		if !strings.Contains(logs, want) {
			t.Errorf("logs lack %q:\n%s", want, logs)
		}
	}
}

// TestManagerRetryCounters verifies shard retries are counted.
func TestManagerRetryCounters(t *testing.T) {
	fail := true
	m := mustOpen(t, Options{
		Dir: t.TempDir(), ShardRetries: 3, RetryBackoff: time.Millisecond,
		BeforeShard: func(jobID string, shard, attempt int) error {
			if shard == 0 && attempt == 1 && fail {
				fail = false
				return errTransient
			}
			return nil
		},
	})
	defer m.Close()
	st, err := m.Submit(Campaign{Kind: KindSweep, Configs: []string{"Hera/XScale"}, Rhos: []float64{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, m, st.ID); st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if got := m.Stats().ShardRetries; got != 1 {
		t.Errorf("ShardRetries = %d, want 1", got)
	}
}

var errTransient = &transientErr{}

type transientErr struct{}

func (*transientErr) Error() string { return "injected transient failure" }

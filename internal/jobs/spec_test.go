// Spec campaigns: declarative scenario documents replicated per config
// through the journaled shard machinery, bit-identical to the direct
// engine fan-out.
package jobs

import (
	"encoding/json"
	"strings"
	"testing"

	"respeed/internal/engine"
	"respeed/internal/platform"
	"respeed/internal/spec"
)

// TestSpecCampaignMatchesReplicateScenario proves a spec campaign's
// merged per-config estimate is bit-identical to
// engine.ReplicateScenario run in one piece with the campaign seed —
// the shard layer adds no statistical drift to the DSL path either.
func TestSpecCampaignMatchesReplicateScenario(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir()})
	defer m.Close()

	sp, ok := spec.ByName("cluster-twolevel")
	if !ok {
		t.Fatal("builtin cluster-twolevel missing")
	}
	camp := Campaign{Kind: KindSpec, Configs: []string{"Hera/XScale", "Atlas/Crusoe"}, Spec: &sp, N: 40, Seed: 11}
	st, err := m.Submit(camp)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("want one cell per config, got %d", len(res.Cells))
	}
	for _, cell := range res.Cells {
		if cell.Estimate == nil || cell.Infeasible {
			t.Fatalf("spec cell incomplete: %+v", cell)
		}
		cfg, _ := platform.ByName(cell.Config)
		sc, err := sp.Compile(spec.EnvFor(cfg))
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.ReplicateScenario(sc, camp.Seed, camp.N, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(cell.Estimate)
		direct, _ := json.Marshal(want)
		if string(got) != string(direct) {
			t.Errorf("%s: campaign estimate differs from direct fan-out:\n got %s\nwant %s",
				cell.Config, got, direct)
		}
	}
}

// TestSpecCampaignWeibullEndToEnd runs a non-legacy fault family (the
// acceptance's Weibull arrivals) through the full campaign machinery.
func TestSpecCampaignWeibullEndToEnd(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir()})
	defer m.Close()

	sp, err := spec.Parse([]byte(`{
	  "version": 1,
	  "name": "weibull-campaign",
	  "plan": {"w": 50, "sigma1": 0.4, "sigma2": 0.8},
	  "total_work": 500,
	  "faults": {
	    "silent": {"dist": "exponential", "rate": 2e-3},
	    "failstop": {"dist": "weibull", "shape": 0.7, "scale": 1500}
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(Campaign{Kind: KindSpec, Configs: []string{"Hera/XScale"}, Spec: &sp, N: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, m, st.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	est := res.Cells[0].Estimate
	if est == nil || est.Time.Mean <= 0 || est.MeanAttempts < 1 {
		t.Fatalf("weibull campaign estimate: %+v", est)
	}
}

// TestSpecCampaignValidation pins the normalize contract for the new
// kind: spec required, rhos rejected, spec rejected on other kinds, and
// non-compiling specs refused at submit.
func TestSpecCampaignValidation(t *testing.T) {
	m := mustOpen(t, Options{Dir: t.TempDir()})
	defer m.Close()
	sp, _ := spec.ByName("partial-failstop")

	cases := []struct {
		name string
		c    Campaign
		want string
	}{
		{"missing spec", Campaign{Kind: KindSpec}, "needs a spec"},
		{"rhos rejected", Campaign{Kind: KindSpec, Spec: &sp, Rhos: []float64{3}}, "rhos do not apply"},
		{"spec on sweep", Campaign{Kind: KindSweep, Spec: &sp, Rhos: []float64{3}}, "spec applies to spec campaigns"},
		{"n too small", Campaign{Kind: KindSpec, Spec: &sp, N: 1}, "must be in [2"},
	}
	for _, tc := range cases {
		if _, err := m.Submit(tc.c); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}

	// An invalid spec document is refused before any shard runs.
	bad := sp
	bad.Plan.W = -1
	if _, err := m.Submit(Campaign{Kind: KindSpec, Spec: &bad}); err == nil {
		t.Error("invalid spec accepted")
	}
}

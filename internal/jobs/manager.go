package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"respeed/internal/engine"
	"respeed/internal/obs"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a state is final: done, failed or cancelled.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors of the manager API.
var (
	// ErrUnknownJob reports a job id the manager does not hold.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrNotDone reports a result request for an unfinished job.
	ErrNotDone = errors.New("jobs: job has no result yet")
	// ErrManagerFull reports that the retention cap is reached and every
	// retained job is still active.
	ErrManagerFull = errors.New("jobs: manager full (all retained jobs active)")
	// ErrClosed reports a submit to a closed manager.
	ErrClosed = errors.New("jobs: manager closed")
)

// Options configures a Manager. The zero value (plus a Dir) selects
// sensible defaults.
type Options struct {
	// Dir is the journal/snapshot directory (required; created if
	// absent).
	Dir string
	// Workers bounds concurrently executing shards across all jobs
	// (default GOMAXPROCS).
	Workers int
	// MaxJobs caps retained jobs; submits beyond it evict the oldest
	// finished job, or fail with ErrManagerFull when all are active
	// (default 64).
	MaxJobs int
	// ShardRetries is the attempt count per shard before the job fails
	// (default 3).
	ShardRetries int
	// RetryBackoff is the first retry delay; it doubles per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// Logger receives structured job lifecycle logs (nil discards them).
	Logger *slog.Logger
	// Tracer, when non-nil, records a span per job run with one child
	// span per executed shard.
	Tracer *obs.Tracer
	// Registry, when non-nil, exports the manager's gauges and counters
	// (job states, shards, retries, journal I/O, shard latency).
	Registry *obs.Registry
	// BeforeShard, when non-nil, runs before every shard attempt and may
	// inject an error to force the retry path (fault-injection hook,
	// also used by tests).
	BeforeShard func(jobID string, shard, attempt int) error
	// ShardRunner, when non-nil, replaces local shard execution: each
	// attempt calls it with the normalized campaign and the shard's plan
	// and journals the raw bytes it returns verbatim. The fleet
	// coordinator uses this hook to dispatch shards to peer daemons;
	// because the journal path is unchanged, crash-resume and the result
	// hash are byte-identical to local execution. Errors flow through
	// the normal retry+backoff path; an error implementing RetryHint
	// stretches the next backoff to the hinted delay.
	ShardRunner func(ctx context.Context, c Campaign, sp ShardPlan, shard, attempt int) (json.RawMessage, error)
	// Gate, when non-nil, bounds shard execution against an external
	// compute lane (the serving layer's heavy lane), so background
	// campaign shards and interactive simulations respect one bound.
	// Wait blocks until a slot is free or ctx is done; the returned
	// release must be called once. admit.Lane satisfies it, and
	// background waits are exempt from the lane's foreground queue
	// bound — shards have no deadline to protect and must not be shed.
	Gate Gate
}

// Gate is an external concurrency bound for shard execution.
type Gate interface {
	Wait(ctx context.Context) (func(), error)
}

// RetryHint is implemented by shard errors that carry an explicit
// retry-after delay (a busy worker's 429 Retry-After header, surfaced
// by the fleet coordinator). The manager stretches the next backoff to
// at least the hinted delay, clamped to a minimum of one second so a
// sub-second hint cannot turn the backoff into a hot loop.
type RetryHint interface {
	RetryAfter() time.Duration
}

// minRetryHint floors Retry-After hints: anything shorter is rounded
// up to one second.
const minRetryHint = time.Second

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 64
	}
	if o.ShardRetries <= 0 {
		o.ShardRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// Event is one progress notification. Every event carries the full
// cumulative progress snapshot, so dropped events (slow subscribers)
// lose granularity, never state.
type Event struct {
	JobID       string `json:"job"`
	State       State  `json:"state"`
	ShardsDone  int    `json:"shards_done"`
	ShardsTotal int    `json:"shards_total"`
	// Shard is the just-completed shard index, or -1 for pure
	// state-transition events.
	Shard int    `json:"shard"`
	Error string `json:"error,omitempty"`
}

// Status is a point-in-time view of one job.
type Status struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	Kind        Kind   `json:"kind"`
	State       State  `json:"state"`
	ShardsTotal int    `json:"shards_total"`
	ShardsDone  int    `json:"shards_done"`
	Error       string `json:"error,omitempty"`
	// Hash is the result content hash, set once the job is done.
	Hash string `json:"hash,omitempty"`
}

// Stats are the manager-wide gauges exported on /metrics.
type Stats struct {
	Queued         int   `json:"queued"`
	Running        int   `json:"running"`
	Done           int   `json:"done"`
	Failed         int   `json:"failed"`
	Cancelled      int   `json:"cancelled"`
	ShardsExecuted int64 `json:"shards_executed"`
	// ShardRetries counts shard attempts beyond the first; JournalBytes
	// and JournalFsyncs total the journal write traffic.
	ShardRetries  int64 `json:"shard_retries"`
	JournalBytes  int64 `json:"journal_bytes"`
	JournalFsyncs int64 `json:"journal_fsyncs"`
}

// job is the manager's per-campaign state.
type job struct {
	id       string
	campaign Campaign
	shards   []ShardPlan

	rec *flightRecorder

	mu         sync.Mutex
	state      State
	done       map[int]json.RawMessage
	errMsg     string
	result     *Result
	journal    *journal
	cancelled  bool               // explicit Cancel (vs. manager shutdown)
	cancel     context.CancelFunc // aborts the job's in-flight shards mid-chunk
	subs       map[int]chan Event
	subSeq     int
	finishedCh chan struct{} // closed on terminal state
}

// Manager runs campaigns: it shards, executes, journals and resumes
// them. Open it over a directory; reopening the same directory resumes
// unfinished jobs from their journals.
type Manager struct {
	opts Options

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order (resume order for recovered jobs)
	seq    int
	closed bool

	sem        chan struct{}
	wg         sync.WaitGroup
	baseCtx    context.Context
	baseCancel context.CancelFunc

	shardsExecuted atomic.Int64
	shardRetries   atomic.Int64
	journalIO      journalStats
	shardHist      *obs.Histogram     // shard wall-clock seconds
	fleetPhases    *obs.HistogramVec  // respeed_fleet_shard_seconds{peer,phase}
	log            *slog.Logger

	// testShardDelay, when non-nil, runs before every shard execution
	// (lets tests hold shards in flight).
	testShardDelay func()
}

// Open creates (or reopens) a manager over dir: completed snapshots are
// loaded, unfinished journals are replayed and their jobs resumed —
// re-executing only the shards without a durable journal record. A
// corrupt journal fails that job (with the *CorruptError preserved in
// its status) without affecting others.
func Open(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("jobs: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create dir: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		jobs:       make(map[string]*job),
		sem:        make(chan struct{}, opts.Workers),
		baseCtx:    ctx,
		baseCancel: cancel,
		shardHist:  obs.NewHistogram(obs.DurationBuckets()),
		log:        opts.Logger,
	}
	m.registerMetrics(opts.Registry)
	if err := m.load(); err != nil {
		cancel()
		return nil, err
	}
	return m, nil
}

// registerMetrics exports the manager's state on a metrics registry.
// Gauges and counters read the manager's own atomics at scrape time, so
// the hot path pays nothing beyond what it already maintains.
func (m *Manager) registerMetrics(r *obs.Registry) {
	// The per-peer phase histograms feed the flight recorder's summary
	// view: queue wait, dispatch round-trip and peer-reported execution,
	// labeled by the daemon that ran the shard. Registered first because
	// the nil-registry path still needs the (no-op) vec.
	m.fleetPhases = r.NewHistogramVec(obs.Opts{
		Name:   "respeed_fleet_shard_seconds",
		Help:   "Campaign shard phase durations by executing peer (phase: queue|dispatch|exec).",
		Labels: []string{"peer", "phase"},
	}, obs.DurationBuckets())
	if r == nil {
		return
	}
	states := r.NewGaugeVec(obs.Opts{
		Name:   "respeed_jobs_current",
		Help:   "Retained campaign jobs by lifecycle state.",
		Labels: []string{"state"},
	})
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		st := st
		states.WithFunc(func() float64 { return float64(m.countState(st)) }, string(st))
	}
	r.NewCounterFunc("respeed_jobs_shards_executed_total",
		"Campaign shards executed to durable completion.",
		func() float64 { return float64(m.shardsExecuted.Load()) })
	r.NewCounterFunc("respeed_jobs_shard_retries_total",
		"Campaign shard attempts beyond the first.",
		func() float64 { return float64(m.shardRetries.Load()) })
	r.NewCounterFunc("respeed_jobs_journal_bytes_total",
		"Bytes appended to campaign journals.",
		func() float64 { return float64(m.journalIO.bytes.Load()) })
	r.NewCounterFunc("respeed_jobs_journal_fsyncs_total",
		"Fsyncs issued by campaign journal appends.",
		func() float64 { return float64(m.journalIO.fsyncs.Load()) })
	r.RegisterHistogram(obs.Opts{
		Name: "respeed_jobs_shard_duration_seconds",
		Help: "Wall-clock duration of successful shard executions.",
	}, m.shardHist)
}

// countState counts retained jobs in one state.
func (m *Manager) countState(st State) int {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	n := 0
	for _, j := range jobs {
		j.mu.Lock()
		if j.state == st {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// jobID formats the n-th job id; ids sort lexically in submission order.
func jobID(n int) string { return fmt.Sprintf("j%06d", n) }

// parseJobID extracts the sequence number from an id (for seq recovery).
func parseJobID(id string) (int, bool) {
	if len(id) != 7 || id[0] != 'j' {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// load scans the directory: snapshots are finished jobs, journals are
// unfinished ones to resume.
func (m *Manager) load() error {
	entries, err := os.ReadDir(m.opts.Dir)
	if err != nil {
		return fmt.Errorf("jobs: scan dir: %w", err)
	}
	var resumed []*job
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".json"):
			id := strings.TrimSuffix(name, ".json")
			if _, ok := parseJobID(id); !ok {
				continue // foreign file
			}
			res, err := readSnapshot(filepath.Join(m.opts.Dir, name))
			if err != nil {
				return err
			}
			j := &job{
				id: id, campaign: res.Campaign, shards: res.Campaign.planShards(),
				state: StateDone, result: &res, finishedCh: make(chan struct{}),
				rec: loadFlightRecorder(filepath.Join(m.opts.Dir, id+".trace")),
			}
			close(j.finishedCh)
			m.jobs[id] = j
		case strings.HasSuffix(name, ".journal"):
			id := strings.TrimSuffix(name, ".journal")
			if _, ok := parseJobID(id); !ok {
				continue
			}
			path := filepath.Join(m.opts.Dir, name)
			if _, err := os.Stat(filepath.Join(m.opts.Dir, id+".json")); err == nil {
				// Snapshot exists: the journal is a retired leftover from
				// a crash between rename and remove.
				os.Remove(path)
				continue
			}
			rep, err := ReplayJournal(path)
			var cerr *CorruptError
			switch {
			case errors.As(err, &cerr):
				// Committed history was damaged: surface a failed job
				// carrying the typed error; keep the file for forensics.
				j := &job{
					id: id, state: StateFailed, errMsg: cerr.Error(),
					finishedCh: make(chan struct{}),
				}
				close(j.finishedCh)
				m.jobs[id] = j
				continue
			case err != nil:
				return err
			case rep == nil:
				// No durable submit: the job never observably existed.
				os.Remove(path)
				continue
			}
			j := &job{
				id: id, campaign: rep.Campaign, shards: rep.Campaign.planShards(),
				done: rep.Done, finishedCh: make(chan struct{}),
				rec: loadFlightRecorder(filepath.Join(m.opts.Dir, id+".trace")),
			}
			if rep.Cancelled {
				j.state = StateCancelled
				close(j.finishedCh)
				m.jobs[id] = j
				continue
			}
			jn, err := openJournal(path, &m.journalIO)
			if err != nil {
				return err
			}
			j.journal = jn
			j.state = StateQueued
			m.jobs[id] = j
			resumed = append(resumed, j)
		}
	}
	for id := range m.jobs {
		if n, ok := parseJobID(id); ok && n > m.seq {
			m.seq = n
		}
	}
	m.order = make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		m.order = append(m.order, id)
	}
	sort.Strings(m.order)
	sort.Slice(resumed, func(a, b int) bool { return resumed[a].id < resumed[b].id })
	for _, j := range resumed {
		j.mu.Lock()
		doneShards, total := len(j.done), len(j.shards)
		j.mu.Unlock()
		m.log.Info("resuming job from journal", "job", j.id,
			"shards_done", doneShards, "shards_total", total)
		m.startJob(j)
	}
	if len(m.jobs) > 0 {
		m.log.Info("job directory loaded", "jobs", len(m.jobs), "resumed", len(resumed))
	}
	return nil
}

// Submit validates, journals and enqueues a campaign, returning its
// status once the submit record is durable: from this point a crash
// cannot lose the job.
func (m *Manager) Submit(c Campaign) (Status, error) {
	norm, err := c.normalize()
	if err != nil {
		return Status{}, err
	}
	shards := norm.planShards()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, ErrClosed
	}
	if err := m.evictLocked(); err != nil {
		m.mu.Unlock()
		return Status{}, err
	}
	m.seq++
	id := jobID(m.seq)
	jn, err := createJournal(filepath.Join(m.opts.Dir, id+".journal"), &m.journalIO)
	if err != nil {
		m.seq--
		m.mu.Unlock()
		return Status{}, err
	}
	j := &job{
		id: id, campaign: norm, shards: shards, state: StateQueued,
		done: make(map[int]json.RawMessage), journal: jn,
		finishedCh: make(chan struct{}),
		rec:        newFlightRecorder(filepath.Join(m.opts.Dir, id+".trace")),
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()

	if err := jn.append(record{T: recordSubmit, ID: id, Campaign: &norm, Shards: len(shards)}); err != nil {
		jn.close()
		m.mu.Lock()
		delete(m.jobs, id)
		for i, oid := range m.order {
			if oid == id {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		os.Remove(filepath.Join(m.opts.Dir, id+".journal"))
		return Status{}, err
	}
	m.log.Info("job submitted", "job", id, "kind", norm.Kind,
		"name", norm.Name, "shards", len(shards))
	m.startJob(j)
	return m.statusOf(j), nil
}

// evictLocked enforces MaxJobs by evicting the oldest finished job
// (including its files); all-active means the manager is full.
func (m *Manager) evictLocked() error {
	if len(m.jobs) < m.opts.MaxJobs {
		return nil
	}
	for i, id := range m.order {
		j := m.jobs[id]
		j.mu.Lock()
		t := j.state.Terminal()
		j.mu.Unlock()
		if !t {
			continue
		}
		delete(m.jobs, id)
		m.order = append(m.order[:i], m.order[i+1:]...)
		os.Remove(filepath.Join(m.opts.Dir, id+".json"))
		os.Remove(filepath.Join(m.opts.Dir, id+".journal"))
		os.Remove(filepath.Join(m.opts.Dir, id+".trace"))
		return nil
	}
	return ErrManagerFull
}

// startJob launches the job's runner goroutine.
func (m *Manager) startJob(j *job) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.runJob(j)
	}()
}

// runJob drives one job: fan pending shards out over the shared
// replication executor, journal each completion, then assemble,
// snapshot and retire the journal. On shutdown (manager Close) it stops
// without a terminal state so the journal resumes the job later; on
// explicit Cancel the per-job context aborts in-flight shards mid-chunk
// and a cancel record is committed.
func (m *Manager) runJob(j *job) {
	ctx := obs.WithTracer(m.baseCtx, m.opts.Tracer)
	// The job id doubles as the trace's request ID: every dispatch this
	// job makes — including cross-daemon shard posts, which forward it
	// as X-Request-ID — is grep-able fleet-wide by the one id the
	// operator already holds.
	ctx = obs.WithRequestID(ctx, j.id)
	ctx, span := obs.StartSpan(ctx, "job")
	span.Annotate("job", j.id)
	span.Annotate("kind", string(j.campaign.Kind))
	defer span.End()
	jctx, jcancel := context.WithCancel(ctx)
	defer jcancel()
	j.mu.Lock()
	j.cancel = jcancel
	if j.state == StateQueued {
		j.state = StateRunning
	}
	pending := make([]int, 0, len(j.shards))
	for i := range j.shards {
		if _, ok := j.done[i]; !ok {
			pending = append(pending, i)
		}
	}
	j.mu.Unlock()
	m.publish(j, -1)

	// The manager-wide semaphore (bounding shards across ALL jobs) is
	// taken inside the chunk function, under the job context, so a
	// cancelled job never waits on a slot. A shard error aborts the
	// remaining dispatch (FanOut's fail-fast); context errors are not
	// failures — the terminal-state switch below distinguishes explicit
	// cancel from manager shutdown.
	ferr := engine.SharedExecutor().FanOut(jctx, len(pending), m.opts.Workers, func(i int) error {
		idx := pending[i]
		if j.terminalOrCancelled() {
			return nil
		}
		enqueued := time.Now()
		select {
		case <-jctx.Done():
			return jctx.Err()
		case m.sem <- struct{}{}:
		}
		defer func() { <-m.sem }()
		if m.opts.Gate != nil {
			// The shared heavy lane: shards yield to interactive
			// simulation capacity, waiting (never shedding) for a slot.
			release, err := m.opts.Gate.Wait(jctx)
			if err != nil {
				return err
			}
			defer release()
		}
		return m.runShard(jctx, j, idx, time.Since(enqueued).Seconds())
	})
	if ferr != nil && !errors.Is(ferr, context.Canceled) && !errors.Is(ferr, context.DeadlineExceeded) {
		j.fail(ferr)
	}

	j.mu.Lock()
	switch {
	case j.state == StateFailed:
		errMsg := j.errMsg
		j.finishLocked()
		j.mu.Unlock()
		m.log.Warn("job failed", "job", j.id, "error", errMsg)
		m.publish(j, -1)
		return
	case j.cancelled:
		j.state = StateCancelled
		j.finishLocked()
		j.mu.Unlock()
		m.log.Info("job cancelled", "job", j.id)
		m.publish(j, -1)
		return
	case ctx.Err() != nil:
		// Manager shutdown: no terminal state, no journal retirement —
		// the job stays resumable. Subscribers are released so SSE
		// streams drain.
		j.closeSubsLocked()
		j.mu.Unlock()
		return
	}
	// All shards durable: assemble from the journal bytes.
	done := make(map[int]json.RawMessage, len(j.done))
	for k, v := range j.done {
		done[k] = v
	}
	j.mu.Unlock()

	res, err := j.campaign.assemble(j.id, j.shards, done)
	if err == nil {
		err = writeSnapshot(filepath.Join(m.opts.Dir, j.id+".json"), res)
	}
	j.mu.Lock()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		j.finishLocked()
		j.mu.Unlock()
		m.log.Warn("job failed to assemble", "job", j.id, "error", err)
		m.publish(j, -1)
		return
	}
	j.result = &res
	j.state = StateDone
	j.finishLocked()
	j.mu.Unlock()
	os.Remove(filepath.Join(m.opts.Dir, j.id+".journal"))
	m.log.Info("job done", "job", j.id, "shards", len(j.shards), "hash", res.Hash)
	m.publish(j, -1)
}

// runShard executes one shard with retry+backoff and journals the
// result. A nil return means the shard is durably recorded (or the job
// is cancelled/shutting down); an error means the shard exhausted its
// attempts. queueSeconds is how long the shard waited for its worker
// slot and gate; it lands in the flight recorder and the queue-phase
// histogram.
func (m *Manager) runShard(ctx context.Context, j *job, idx int, queueSeconds float64) error {
	ctx, span := obs.StartSpan(ctx, "shard")
	span.Annotate("job", j.id)
	span.Annotate("shard", strconv.Itoa(idx))
	defer span.End()
	var lastErr error
	var retryCause string
	for attempt := 1; attempt <= m.opts.ShardRetries; attempt++ {
		if ctx.Err() != nil || j.terminalOrCancelled() {
			return nil
		}
		if attempt > 1 {
			m.shardRetries.Add(1)
			retryCause = lastErr.Error()
			m.log.Warn("retrying shard", "job", j.id, "shard", idx,
				"attempt", attempt, "error", lastErr)
			backoff := m.opts.RetryBackoff << (attempt - 2)
			var hint RetryHint
			if errors.As(lastErr, &hint) {
				if h := max(hint.RetryAfter(), minRetryHint); h > backoff {
					backoff = h
				}
			}
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil
			case <-t.C:
			}
		}
		attr := &shardAttr{}
		start := time.Now()
		lastErr = m.tryShard(withShardAttr(ctx, attr), j, idx, attempt)
		dispatch := time.Since(start).Seconds()
		if lastErr == nil {
			m.shardHist.Observe(dispatch)
			m.shardsExecuted.Add(1)
			m.recordShard(j, idx, attempt, attr, queueSeconds, dispatch, retryCause, true)
			m.publish(j, idx)
			return nil
		}
	}
	attr := &shardAttr{}
	m.recordShard(j, idx, m.opts.ShardRetries, attr, queueSeconds, 0, lastErr.Error(), false)
	return fmt.Errorf("shard %d (%s ρ=%g): %w after %d attempts",
		idx, j.shards[idx].Config, j.shards[idx].Rho, lastErr, m.opts.ShardRetries)
}

// recordShard writes one flight-recorder entry and feeds the per-peer
// phase histograms.
func (m *Manager) recordShard(j *job, idx, attempt int, attr *shardAttr,
	queueSeconds, dispatchSeconds float64, retryCause string, ok bool) {
	peer, exec := attr.get()
	if peer == "" {
		peer = "local"
	}
	if exec == 0 {
		// Local execution has no separate peer-measured clock: the
		// dispatch wall-clock IS the execution time.
		exec = dispatchSeconds
	}
	resultBytes := 0
	if ok {
		j.mu.Lock()
		resultBytes = len(j.done[idx])
		j.mu.Unlock()
	}
	j.rec.record(ShardTrace{
		Shard: idx, Config: j.shards[idx].Config, Rho: j.shards[idx].Rho,
		Attempt: attempt, Peer: peer,
		QueueSeconds: queueSeconds, DispatchSeconds: dispatchSeconds,
		ExecSeconds: exec, RetryCause: retryCause,
		ResultBytes: resultBytes, OK: ok,
	})
	if ok {
		m.fleetPhases.With(peer, "queue").Observe(queueSeconds)
		m.fleetPhases.With(peer, "dispatch").Observe(dispatchSeconds)
		m.fleetPhases.With(peer, "exec").Observe(exec)
	}
}

// tryShard is one attempt: compute, encode, journal.
func (m *Manager) tryShard(ctx context.Context, j *job, idx, attempt int) error {
	if m.testShardDelay != nil {
		m.testShardDelay()
	}
	if m.opts.BeforeShard != nil {
		if err := m.opts.BeforeShard(j.id, idx, attempt); err != nil {
			return err
		}
	}
	var raw json.RawMessage
	if m.opts.ShardRunner != nil {
		var err error
		raw, err = m.opts.ShardRunner(ctx, j.campaign, j.shards[idx], idx, attempt)
		if err != nil {
			return err
		}
	} else {
		sr, err := j.campaign.runShard(ctx, j.shards[idx])
		if err != nil {
			return err
		}
		raw, err = json.Marshal(sr)
		if err != nil {
			return err
		}
	}
	if err := j.journal.append(record{T: recordShard, Idx: idx, Result: raw}); err != nil {
		return err
	}
	j.mu.Lock()
	j.done[idx] = raw
	j.mu.Unlock()
	return nil
}

// fail records the first shard failure.
func (j *job) fail(err error) {
	j.mu.Lock()
	if j.state != StateFailed {
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.mu.Unlock()
}

// terminalOrCancelled reports whether the job should stop dispatching.
func (j *job) terminalOrCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled || j.state.Terminal()
}

// finishLocked closes the journal and releases subscribers; j.mu held.
func (j *job) finishLocked() {
	if j.journal != nil {
		j.journal.close()
	}
	j.rec.closeFile()
	select {
	case <-j.finishedCh:
	default:
		close(j.finishedCh)
	}
}

// closeSubsLocked detaches all subscribers (shutdown); j.mu held.
func (j *job) closeSubsLocked() {
	for k, ch := range j.subs {
		close(ch)
		delete(j.subs, k)
	}
}

// publish snapshots progress and fans it out to subscribers
// (non-blocking; every event is cumulative, so drops are harmless).
// Terminal events also detach and close the subscribers.
func (m *Manager) publish(j *job, shard int) {
	j.mu.Lock()
	ev := Event{
		JobID: j.id, State: j.state, ShardsDone: len(j.done),
		ShardsTotal: len(j.shards), Shard: shard, Error: j.errMsg,
	}
	terminal := j.state.Terminal()
	for k, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
		if terminal {
			close(ch)
			delete(j.subs, k)
		}
	}
	j.mu.Unlock()
}

// get looks a job up.
func (m *Manager) get(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return j, nil
}

// statusOf snapshots one job.
func (m *Manager) statusOf(j *job) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, Name: j.campaign.Name, Kind: j.campaign.Kind,
		State: j.state, ShardsTotal: len(j.shards), ShardsDone: len(j.done),
		Error: j.errMsg,
	}
	if j.result != nil {
		st.Hash = j.result.Hash
	}
	return st
}

// Status returns a job's current status.
func (m *Manager) Status(id string) (Status, error) {
	j, err := m.get(id)
	if err != nil {
		return Status{}, err
	}
	return m.statusOf(j), nil
}

// List returns every retained job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if j, err := m.get(id); err == nil {
			out = append(out, m.statusOf(j))
		}
	}
	return out
}

// Result returns a finished job's result (ErrNotDone otherwise).
func (m *Manager) Result(id string) (Result, error) {
	j, err := m.get(id)
	if err != nil {
		return Result{}, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return Result{}, fmt.Errorf("%w (job %s is %s)", ErrNotDone, id, j.state)
	}
	return *j.result, nil
}

// Cancel requests cancellation: pending shards stop dispatching, the
// cancel is journaled (so a restart does not resurrect the job), and
// the job transitions to cancelled once in-flight shards drain.
// Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (Status, error) {
	j, err := m.get(id)
	if err != nil {
		return Status{}, err
	}
	j.mu.Lock()
	if j.state.Terminal() || j.cancelled {
		j.mu.Unlock()
		return m.statusOf(j), nil
	}
	j.cancelled = true
	jn := j.journal
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		// Abort in-flight shards promptly: Monte-Carlo chunks poll this
		// context and stop mid-chunk instead of burning out their range.
		cancel()
	}
	if jn != nil {
		if err := jn.append(record{T: recordCancel}); err != nil {
			// The job may have finished (and retired its journal) in
			// the race window; that is a successful no-op cancel.
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if !terminal {
				return Status{}, err
			}
		}
	}
	return m.statusOf(j), nil
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	j, err := m.get(id)
	if err != nil {
		return Status{}, err
	}
	select {
	case <-j.finishedCh:
		return m.statusOf(j), nil
	case <-ctx.Done():
		return m.statusOf(j), ctx.Err()
	}
}

// Subscribe attaches a progress listener: the returned channel first
// delivers the current state, then every subsequent event, and is
// closed at the job's terminal event (or on unsubscribe/shutdown).
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	j, err := m.get(id)
	if err != nil {
		return nil, nil, err
	}
	ch := make(chan Event, 256)
	j.mu.Lock()
	ch <- Event{
		JobID: j.id, State: j.state, ShardsDone: len(j.done),
		ShardsTotal: len(j.shards), Shard: -1, Error: j.errMsg,
	}
	if j.state.Terminal() {
		close(ch)
		j.mu.Unlock()
		return ch, func() {}, nil
	}
	if j.subs == nil {
		j.subs = make(map[int]chan Event)
	}
	j.subSeq++
	key := j.subSeq
	j.subs[key] = ch
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		if c, ok := j.subs[key]; ok {
			close(c)
			delete(j.subs, key)
		}
		j.mu.Unlock()
	}
	return ch, cancel, nil
}

// Stats snapshots the per-state gauges and the shard counter.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	var s Stats
	s.ShardsExecuted = m.shardsExecuted.Load()
	s.ShardRetries = m.shardRetries.Load()
	s.JournalBytes = m.journalIO.bytes.Load()
	s.JournalFsyncs = m.journalIO.fsyncs.Load()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			s.Queued++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCancelled:
			s.Cancelled++
		}
		j.mu.Unlock()
	}
	return s
}

// Kinds lists the valid campaign kinds.
func Kinds() []string { return sortedKinds() }

// Close stops the manager: running shards finish their current attempt,
// nothing new dispatches, journals close. Unfinished jobs stay on disk
// and resume when the directory is reopened. Close is idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.baseCancel()
	m.wg.Wait()
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.journal != nil {
			j.journal.close()
		}
		j.rec.closeFile()
		j.closeSubsLocked()
		j.mu.Unlock()
	}
	m.mu.Unlock()
}

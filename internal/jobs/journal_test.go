package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildJournal writes a realistic journal — submit + k completed shard
// records from a real campaign — and returns its bytes plus the byte
// offset at which each line ends (exclusive, including the '\n').
func buildJournal(t *testing.T, k int) ([]byte, []int, Campaign) {
	t.Helper()
	camp, err := Campaign{
		Kind:    KindMonteCarlo,
		Configs: []string{"Hera/XScale"},
		Rhos:    []float64{3},
		N:      500,
		Seed:   5,
	}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	shards := camp.planShards()
	if k > len(shards) {
		t.Fatalf("campaign has only %d shards", len(shards))
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "j000001.journal")
	jn, err := createJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.append(record{T: recordSubmit, ID: "j000001", Campaign: &camp, Shards: len(shards)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		sr, err := camp.runShard(context.Background(), shards[i])
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(sr)
		if err != nil {
			t.Fatal(err)
		}
		if err := jn.append(record{T: recordShard, Idx: i, Result: raw}); err != nil {
			t.Fatal(err)
		}
	}
	jn.close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lineEnds []int
	for i, b := range data {
		if b == '\n' {
			lineEnds = append(lineEnds, i+1)
		}
	}
	if len(lineEnds) != k+1 {
		t.Fatalf("journal has %d lines, want %d", len(lineEnds), k+1)
	}
	return data, lineEnds, camp
}

// replayBytes writes data to a fresh file and replays it, converting a
// panic into a test failure (the property under test: never panic).
func replayBytes(t *testing.T, data []byte) (rep *replayed, err error) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "j000001.journal")
	if werr := os.WriteFile(path, data, 0o644); werr != nil {
		t.Fatal(werr)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("ReplayJournal panicked: %v (input %d bytes)", r, len(data))
		}
	}()
	return ReplayJournal(path)
}

// completeLinesBefore counts how many records are recoverable from
// data[:n]: a record is committed once all its bytes except possibly
// the trailing newline are present (the CRC frames the JSON, not the
// terminator).
func completeLinesBefore(lineEnds []int, n int) int {
	c := 0
	for _, end := range lineEnds {
		if end-1 <= n {
			c++
		}
	}
	return c
}

// TestJournalTruncationEveryOffset is the acceptance property for torn
// writes: for EVERY prefix of a valid journal, replay either resumes
// cleanly with exactly the durably committed records, or (when even the
// submit record is incomplete) discards the never-observable job. It
// must never panic and never drop a fully committed shard.
func TestJournalTruncationEveryOffset(t *testing.T) {
	const k = 6
	data, lineEnds, _ := buildJournal(t, k)
	for n := 0; n <= len(data); n++ {
		rep, err := replayBytes(t, data[:n])
		if err != nil {
			t.Fatalf("truncation at %d produced an error (prefixes are always clean): %v", n, err)
		}
		full := completeLinesBefore(lineEnds, n)
		if full == 0 {
			if rep != nil {
				t.Fatalf("truncation at %d: submit incomplete but job recovered", n)
			}
			continue
		}
		if rep == nil {
			t.Fatalf("truncation at %d: submit committed (%d full lines) but job discarded", n, full)
		}
		wantShards := full - 1 // minus the submit line
		if len(rep.Done) != wantShards {
			t.Fatalf("truncation at %d: recovered %d shards, want %d (never drop committed shards)",
				n, len(rep.Done), wantShards)
		}
		for i := 0; i < wantShards; i++ {
			if _, ok := rep.Done[i]; !ok {
				t.Fatalf("truncation at %d: committed shard %d missing", n, i)
			}
		}
		completeEnd := 0
		for _, end := range lineEnds {
			if end-1 <= n {
				completeEnd = min(end, n)
			}
		}
		if torn := n > completeEnd; torn != rep.TornTail {
			t.Fatalf("truncation at %d: TornTail=%v, want %v", n, rep.TornTail, torn)
		}
	}
}

// TestJournalCorruptionEveryOffset flips every byte of a valid journal
// (one at a time) and asserts the trichotomy: replay either reports a
// typed *CorruptError, discards a job whose submit record was damaged,
// or resumes cleanly having dropped only tail records at/after the
// damaged line — and every record it does recover is byte-identical to
// the original. Never a panic, never a silently altered shard.
func TestJournalCorruptionEveryOffset(t *testing.T) {
	const k = 4
	data, lineEnds, _ := buildJournal(t, k)
	orig, err := replayBytes(t, data)
	if err != nil || orig == nil {
		t.Fatalf("pristine journal must replay: %v", err)
	}
	lineOf := func(off int) int {
		for i, end := range lineEnds {
			if off < end {
				return i
			}
		}
		return len(lineEnds) - 1
	}
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x20 // flips case/space in text, always changes the byte
		rep, err := replayBytes(t, mut)
		damaged := lineOf(off)
		switch {
		case err != nil:
			var cerr *CorruptError
			if !errors.As(err, &cerr) {
				t.Fatalf("flip at %d: untyped error %T %v", off, err, err)
			}
		case rep == nil:
			if damaged != 0 {
				t.Fatalf("flip at %d (line %d): job discarded but submit was intact", off, damaged)
			}
		default:
			// Clean resume: records on lines strictly before the damaged
			// one must all be present and byte-identical; the damaged
			// line and later may only have been dropped, never altered.
			for i := 0; i < damaged-1 && i < k; i++ {
				got, ok := rep.Done[i]
				if !ok {
					t.Fatalf("flip at %d (line %d): intact shard %d dropped", off, damaged, i)
				}
				if want := orig.Done[i]; !bytes.Equal(got, want) {
					t.Fatalf("flip at %d: shard %d bytes altered", off, i)
				}
			}
			for i, got := range rep.Done {
				want, ok := orig.Done[i]
				if !ok || !bytes.Equal(got, want) {
					t.Fatalf("flip at %d: recovered shard %d does not match original", off, i)
				}
			}
		}
	}
}

// TestReplayEdgeCases covers empty and foreign files.
func TestReplayEdgeCases(t *testing.T) {
	if rep, err := replayBytes(t, nil); rep != nil || err != nil {
		t.Fatalf("empty journal: %+v %v", rep, err)
	}
	if rep, err := replayBytes(t, []byte("garbage with no newline")); rep != nil || err != nil {
		t.Fatalf("single torn garbage line: %+v %v", rep, err)
	}
	_, err := replayBytes(t, []byte("garbage line one\ngarbage line two\n"))
	var cerr *CorruptError
	if !errors.As(err, &cerr) {
		t.Fatalf("multi-line garbage should be typed corruption, got %v", err)
	}
	if cerr.Line != 1 {
		t.Fatalf("corruption should point at line 1, got %d", cerr.Line)
	}
}

// TestManagerSurvivesCorruptJournal: a manager opened over a directory
// with a damaged journal must not fail wholesale — the damaged job is
// surfaced as failed with the corruption message, and new work proceeds.
func TestManagerSurvivesCorruptJournal(t *testing.T) {
	data, _, _ := buildJournal(t, 3)
	mut := append([]byte(nil), data...)
	mut[12] ^= 0xff // damage the submit line of a multi-line journal
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "j000001.journal"), mut, 0o644); err != nil {
		t.Fatal(err)
	}
	m := mustOpen(t, Options{Dir: dir})
	defer m.Close()
	st, err := m.Status("j000001")
	if err != nil {
		t.Fatalf("corrupt job should be retained: %v", err)
	}
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("corrupt job should be failed with detail, got %+v", st)
	}
	// The manager keeps working and numbers past the damaged job.
	st2, err := m.Submit(Campaign{Kind: KindSweep, Configs: []string{"Hera/XScale"}, Rhos: []float64{3}})
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != "j000002" {
		t.Fatalf("new job id %s, want j000002", st2.ID)
	}
	if fin := waitDone(t, m, st2.ID); fin.State != StateDone {
		t.Fatalf("new job ended %s", fin.State)
	}
}

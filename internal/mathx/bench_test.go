package mathx

import (
	"math"
	"testing"
)

func BenchmarkQuadraticRoots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := QuadraticRoots(2.1125e-5, -2.497, 338.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrentRoot(b *testing.B) {
	f := func(x float64) float64 { return math.Exp(x) - 2*x - 1 }
	for i := 0; i < b.N; i++ {
		if _, err := BrentRoot(f, 0.5, 3, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrentMin(b *testing.B) {
	f := func(w float64) float64 { return 338.5/w + 2.1125e-5*w }
	for i := 0; i < b.N; i++ {
		if _, err := BrentMin(f, 1, 1e7, 1e-10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimizeConvex1D(b *testing.B) {
	f := func(w float64) float64 { return 338.5/w + 2.1125e-5*w }
	for i := 0; i < b.N; i++ {
		if _, err := MinimizeConvex1D(f, 100, 1e-10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNelderMead2D(b *testing.B) {
	f := func(x []float64) float64 {
		return (x[0]-0.6)*(x[0]-0.6) + 2*(x[1]-0.8)*(x[1]-0.8)
	}
	for i := 0; i < b.N; i++ {
		NelderMead(f, []float64{0.2, 0.2}, 0.1, 1e-10, 0)
	}
}

func BenchmarkAccumulator(b *testing.B) {
	var acc Accumulator
	for i := 0; i < b.N; i++ {
		acc.Add(float64(i) * 1e-7)
	}
	_ = acc.Total()
}

package mathx

import "math"

// invPhi is 1/φ, the golden-section step ratio.
const invPhi = 0.6180339887498949

// GoldenSection minimizes a unimodal function f on [a, b] to absolute
// x-tolerance tol and returns the minimizing abscissa. For non-unimodal f
// it converges to some local minimum inside the interval. The model's
// overhead curves x/W + y + z*W are strictly convex in W > 0, so golden
// section is globally correct there.
func GoldenSection(f func(float64) float64, a, b, tol float64) (float64, error) {
	if !(a < b) {
		return 0, ErrInvalidInterval
	}
	if tol <= 0 {
		tol = 1e-10 * math.Max(1, math.Abs(b))
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 400 && b-a > tol; i++ {
		if f1 <= f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return a + (b-a)/2, nil
}

// BrentMin minimizes a unimodal function on [a, b] with Brent's
// parabolic-interpolation method. It converges superlinearly on smooth
// objectives and falls back to golden-section steps otherwise. Returns
// the abscissa of the minimum.
func BrentMin(f func(float64) float64, a, b, tol float64) (float64, error) {
	if !(a < b) {
		return 0, ErrInvalidInterval
	}
	if tol <= 0 {
		tol = 1e-10
	}
	const cgold = 0.3819660112501051 // 2 - φ
	x := a + cgold*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	var d, e float64
	for i := 0; i < 300; i++ {
		xm := (a + b) / 2
		tol1 := tol*math.Abs(x) + 1e-12
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-(b-a)/2 {
			return x, nil
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Try a parabolic step through x, v, w.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etmp := e
			e = d
			if math.Abs(p) < math.Abs(q*etmp/2) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return x, ErrMaxIterations
}

// MinimizeConvex1D minimizes a convex function over (0, ∞) by geometric
// bracket expansion followed by Brent refinement. start must be positive;
// it seeds the bracket search. Returns the minimizing abscissa.
//
// This is the workhorse behind the "exact" (non-Taylor) optimizer that
// cross-validates Theorem 1: the exact per-unit overhead curves diverge at
// both W→0+ (checkpoint cost dominates) and W→∞ (re-execution dominates),
// so a finite bracket always exists.
func MinimizeConvex1D(f func(float64) float64, start, tol float64) (float64, error) {
	if start <= 0 {
		return 0, ErrInvalidInterval
	}
	lo, hi := start, start
	flo, fhi := f(lo), f(hi)
	fstart := flo
	// Expand downward until f starts rising toward 0+.
	for i := 0; i < 200; i++ {
		next := lo / 2
		fn := f(next)
		if fn >= flo {
			break
		}
		lo, flo = next, fn
	}
	// Expand upward until f starts rising toward ∞.
	for i := 0; i < 200; i++ {
		next := hi * 2
		fn := f(next)
		if fn >= fhi {
			break
		}
		hi, fhi = next, fn
	}
	// Now widen one more notch on each side so the true minimum is interior.
	lo /= 2
	hi *= 2
	_ = fstart
	return BrentMin(f, lo, hi, tol)
}

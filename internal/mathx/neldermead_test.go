package mathx

import (
	"math"
	"testing"
)

func TestNelderMeadQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	x := NelderMead(f, []float64{0, 0}, 0.5, 1e-14, 0)
	if math.Abs(x[0]-3) > 1e-5 || math.Abs(x[1]+1) > 1e-5 {
		t.Errorf("min at %v, want (3,-1)", x)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x := NelderMead(f, []float64{-1.2, 1}, 0.5, 1e-16, 5000)
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Errorf("Rosenbrock min at %v, want (1,1)", x)
	}
}

func TestNelderMead1D(t *testing.T) {
	f := func(x []float64) float64 { return math.Cosh(x[0] - 0.7) }
	x := NelderMead(f, []float64{5}, 1, 1e-14, 0)
	if math.Abs(x[0]-0.7) > 1e-5 {
		t.Errorf("min at %g, want 0.7", x[0])
	}
}

func TestNelderMeadWithPenaltyBox(t *testing.T) {
	// Constrained: minimize (x-5)² on [0,1] via penalty → optimum at 1.
	f := func(x []float64) float64 {
		if x[0] < 0 || x[0] > 1 {
			return 1e12 + x[0]*x[0]
		}
		return (x[0] - 5) * (x[0] - 5)
	}
	x := NelderMead(f, []float64{0.5}, 0.2, 1e-14, 0)
	if math.Abs(x[0]-1) > 1e-4 {
		t.Errorf("constrained min at %g, want 1", x[0])
	}
}

func TestNelderMeadPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty x0 should panic")
		}
	}()
	NelderMead(func(x []float64) float64 { return 0 }, nil, 0.1, 1e-9, 0)
}

func TestNelderMeadDoesNotMutateStart(t *testing.T) {
	x0 := []float64{2, 2}
	NelderMead(func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }, x0, 0.3, 1e-12, 0)
	if x0[0] != 2 || x0[1] != 2 {
		t.Errorf("x0 mutated: %v", x0)
	}
}

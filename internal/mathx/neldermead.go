package mathx

import (
	"math"
	"sort"
)

// NelderMead minimizes f over R^n starting from x0 with the classic
// downhill-simplex method (reflection ρ=1, expansion χ=2, contraction
// γ=0.5, shrink σ=0.5). step sets the initial simplex edge per
// coordinate; tol is the termination spread on function values. Returns
// the best point found.
//
// The continuous-speed ablation minimizes smooth 2-D objectives with box
// constraints handled by penalty at the caller; Nelder–Mead is ideal for
// that scale and needs no derivatives of the exact expectations.
func NelderMead(f func([]float64) float64, x0 []float64, step, tol float64, maxIter int) []float64 {
	n := len(x0)
	if n == 0 {
		panic("mathx: NelderMead needs at least one dimension")
	}
	if step <= 0 {
		step = 0.1
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 500 * n
	}

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	for i := range simplex {
		x := append([]float64(nil), x0...)
		if i > 0 {
			x[i-1] += step
		}
		simplex[i] = vertex{x: x, f: f(x)}
	}
	sortSimplex := func() {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	}
	centroid := make([]float64, n)
	trial := make([]float64, n)

	for iter := 0; iter < maxIter; iter++ {
		sortSimplex()
		if math.Abs(simplex[n].f-simplex[0].f) <=
			tol*(math.Abs(simplex[0].f)+math.Abs(simplex[n].f)+1e-300) {
			break
		}
		// Centroid of all but the worst.
		for j := 0; j < n; j++ {
			centroid[j] = 0
			for i := 0; i < n; i++ {
				centroid[j] += simplex[i].x[j]
			}
			centroid[j] /= float64(n)
		}
		worst := simplex[n]
		// Reflect.
		for j := 0; j < n; j++ {
			trial[j] = centroid[j] + (centroid[j] - worst.x[j])
		}
		fr := f(trial)
		switch {
		case fr < simplex[0].f:
			// Expand.
			exp := make([]float64, n)
			for j := 0; j < n; j++ {
				exp[j] = centroid[j] + 2*(centroid[j]-worst.x[j])
			}
			fe := f(exp)
			if fe < fr {
				simplex[n] = vertex{x: exp, f: fe}
			} else {
				simplex[n] = vertex{x: append([]float64(nil), trial...), f: fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{x: append([]float64(nil), trial...), f: fr}
		default:
			// Contract (outside if the reflection helped at all, inside
			// otherwise).
			var fc float64
			con := make([]float64, n)
			if fr < worst.f {
				for j := 0; j < n; j++ {
					con[j] = centroid[j] + 0.5*(trial[j]-centroid[j])
				}
				fc = f(con)
				if fc <= fr {
					simplex[n] = vertex{x: con, f: fc}
					continue
				}
			} else {
				for j := 0; j < n; j++ {
					con[j] = centroid[j] + 0.5*(worst.x[j]-centroid[j])
				}
				fc = f(con)
				if fc < worst.f {
					simplex[n] = vertex{x: con, f: fc}
					continue
				}
			}
			// Shrink toward the best vertex.
			for i := 1; i <= n; i++ {
				for j := 0; j < n; j++ {
					simplex[i].x[j] = simplex[0].x[j] + 0.5*(simplex[i].x[j]-simplex[0].x[j])
				}
				simplex[i].f = f(simplex[i].x)
			}
		}
	}
	sortSimplex()
	return simplex[0].x
}

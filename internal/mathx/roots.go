package mathx

import "math"

// QuadraticRoots solves a*x^2 + b*x + c = 0 for real roots, returning them
// in ascending order. The discriminant is evaluated with a fused
// multiply-add and the smaller-magnitude root is recovered via Vieta's
// identity (c / (a*r1)) to avoid the classic catastrophic cancellation
// when b^2 >> 4ac — exactly the regime of Theorem 1, where the linear
// coefficient dominates for small λ.
//
// Degenerate cases:
//   - a == 0, b != 0: the single root -c/b is returned twice.
//   - a == 0, b == 0: ErrNoRoot (or, if c == 0 too, the equation is
//     trivially satisfied everywhere; we still report ErrNoRoot because a
//     specific root is meaningless).
//   - negative discriminant: ErrNoRoot.
func QuadraticRoots(a, b, c float64) (x1, x2 float64, err error) {
	if a == 0 {
		if b == 0 {
			return 0, 0, ErrNoRoot
		}
		r := -c / b
		return r, r, nil
	}
	disc := math.FMA(b, b, -4*a*c)
	if disc < 0 {
		return 0, 0, ErrNoRoot
	}
	sq := math.Sqrt(disc)
	// q = -(b + sign(b)*sqrt(disc)) / 2 avoids subtracting nearly equal
	// quantities for either sign of b.
	var q float64
	if b >= 0 {
		q = -(b + sq) / 2
	} else {
		q = -(b - sq) / 2
	}
	var r1, r2 float64
	if q != 0 {
		r1 = q / a
		r2 = c / q
	} else {
		// b == 0 and disc == -4ac >= 0.
		r1 = sq / (2 * a)
		r2 = -r1
	}
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return r1, r2, nil
}

// Discriminant returns b^2 - 4ac evaluated with an FMA for the crucial
// b*b term. Exposed for feasibility checks that need the sign only.
func Discriminant(a, b, c float64) float64 {
	return math.FMA(b, b, -4*a*c)
}

// Cbrt is a readability alias of math.Cbrt used by the Theorem 2 law.
func Cbrt(x float64) float64 { return math.Cbrt(x) }

// BrentRoot finds a root of f in [a, b] using Brent's method (inverse
// quadratic interpolation guarded by bisection). f(a) and f(b) must have
// opposite signs. tol is an absolute tolerance on x; the method always
// converges for continuous f.
func BrentRoot(f func(float64) float64, a, b, tol float64) (float64, error) {
	if !(a < b) {
		return 0, ErrInvalidInterval
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNotBracketed
	}
	c, fc := a, fa
	d, e := b-a, b-a
	const maxIter = 200
	for i := 0; i < maxIter; i++ {
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.Nextafter(math.Abs(b), math.Inf(1))*0x1p-52 + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				// Secant step.
				p = 2 * xm * s
				q = 1 - s
			} else {
				// Inverse quadratic interpolation.
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
	}
	return b, ErrMaxIterations
}

// BisectRoot is a robust fallback root finder used by tests to
// cross-check BrentRoot. Same contract as BrentRoot but linear
// convergence.
func BisectRoot(f func(float64) float64, a, b, tol float64) (float64, error) {
	if !(a < b) {
		return 0, ErrInvalidInterval
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNotBracketed
	}
	for i := 0; i < 400; i++ {
		m := a + (b-a)/2
		if b-a <= tol || m == a || m == b {
			return m, nil
		}
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if (fa > 0) == (fm > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, ErrMaxIterations
}

// Package mathx provides the numerical substrate used throughout respeed:
// numerically stable exponential compositions, compensated summation,
// polynomial root solving, derivative-free root finding and minimization.
//
// Everything in this package is pure (no global state) and deterministic.
// The routines are written for the regimes that the resilience model
// exercises: λW products between 1e-9 and 1e2, quadratics whose
// discriminants suffer catastrophic cancellation, and unimodal objective
// functions that must be minimized to near machine precision.
package mathx

import (
	"errors"
	"math"
)

// Common errors returned by the solvers in this package.
var (
	// ErrNoRoot indicates that a root-finding routine was asked to solve
	// an equation that has no real solution in the requested domain.
	ErrNoRoot = errors.New("mathx: no real root in domain")
	// ErrNotBracketed indicates that the supplied interval does not
	// bracket a sign change of the target function.
	ErrNotBracketed = errors.New("mathx: interval does not bracket a root")
	// ErrMaxIterations indicates an iterative method hit its iteration
	// budget before converging to the requested tolerance.
	ErrMaxIterations = errors.New("mathx: maximum iterations exceeded")
	// ErrInvalidInterval indicates a degenerate or reversed interval.
	ErrInvalidInterval = errors.New("mathx: invalid interval")
)

// Expm1 returns e^x - 1 computed without cancellation for small x.
// It is a thin named wrapper over math.Expm1 so that call sites in the
// model code read in the same vocabulary as the derivations.
func Expm1(x float64) float64 { return math.Expm1(x) }

// OneMinusExpNeg returns 1 - e^(-x), the probability that an exponential
// event with unit rate strikes within x. For the tiny λW/σ exponents that
// dominate the checkpointing regime, the naive 1-math.Exp(-x) loses all
// significant digits; -Expm1(-x) does not.
func OneMinusExpNeg(x float64) float64 { return -math.Expm1(-x) }

// ExpGrowthExcess returns e^x - 1 scaled stably; it is an alias of Expm1
// kept for readability at call sites that compute expected re-execution
// counts of the form (e^{λW/σ} - 1).
func ExpGrowthExcess(x float64) float64 { return math.Expm1(x) }

// Log1p returns log(1+x) without cancellation for small x.
func Log1p(x float64) float64 { return math.Log1p(x) }

// Clamp returns x restricted to [lo, hi]. It panics if lo > hi.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("mathx: Clamp with lo > hi")
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ApproxEqual reports whether a and b agree to within relative tolerance
// rel or absolute tolerance abs, whichever is looser. It treats NaN as
// unequal to everything and two equal infinities as equal.
func ApproxEqual(a, b, rel, abs float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= abs {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*scale
}

// RelErr returns |a-b| / max(|a|,|b|), or 0 when both are zero. It is the
// symmetric relative error used by the validation experiments.
func RelErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

// Sum computes the sum of xs with Neumaier's improved Kahan compensation.
// The resilience sweeps accumulate millions of energy increments that span
// ten orders of magnitude; naive summation visibly biases the totals.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Accumulator is a running Neumaier-compensated sum. The zero value is an
// empty accumulator ready for use.
type Accumulator struct {
	sum  float64
	comp float64
	n    int64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	t := a.sum + x
	if math.Abs(a.sum) >= math.Abs(x) {
		a.comp += (a.sum - t) + x
	} else {
		a.comp += (x - t) + a.sum
	}
	a.sum = t
	a.n++
}

// Total returns the compensated sum of everything added so far.
func (a *Accumulator) Total() float64 { return a.sum + a.comp }

// Count returns how many values have been added.
func (a *Accumulator) Count() int64 { return a.n }

// Reset returns the accumulator to its empty state.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Linspace returns n points evenly spaced over [lo, hi] inclusive.
// n must be at least 2; the endpoints are exact.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Logspace returns n points logarithmically spaced over [lo, hi]
// inclusive. Both endpoints must be positive and n at least 2.
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("mathx: Logspace needs positive endpoints")
	}
	if n < 2 {
		panic("mathx: Logspace needs n >= 2")
	}
	llo, lhi := math.Log(lo), math.Log(hi)
	out := make([]float64, n)
	step := (lhi - llo) / float64(n-1)
	for i := range out {
		out[i] = math.Exp(llo + float64(i)*step)
	}
	out[0], out[n-1] = lo, hi
	return out
}

// Derivative estimates f'(x) with a central difference whose step is
// scaled to x. It is used only for sanity checks and tests, never on the
// hot path.
func Derivative(f func(float64) float64, x float64) float64 {
	h := 1e-6 * math.Max(1, math.Abs(x))
	return (f(x+h) - f(x-h)) / (2 * h)
}

// SecondDerivative estimates f”(x) with a symmetric second difference.
func SecondDerivative(f func(float64) float64, x float64) float64 {
	h := 1e-4 * math.Max(1, math.Abs(x))
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

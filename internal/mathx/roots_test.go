package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuadraticRootsSimple(t *testing.T) {
	// x² - 3x + 2 = 0 → roots 1, 2.
	x1, x2, err := QuadraticRoots(1, -3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x1-1) > 1e-12 || math.Abs(x2-2) > 1e-12 {
		t.Errorf("roots %g, %g; want 1, 2", x1, x2)
	}
}

func TestQuadraticRootsOrdering(t *testing.T) {
	f := func(r1, r2, scale float64) bool {
		r1 = math.Mod(r1, 1e6)
		r2 = math.Mod(r2, 1e6)
		scale = 1 + math.Abs(math.Mod(scale, 10))
		// Build the quadratic scale*(x-r1)(x-r2).
		a := scale
		b := -scale * (r1 + r2)
		c := scale * r1 * r2
		x1, x2, err := QuadraticRoots(a, b, c)
		if err != nil {
			return false
		}
		return x1 <= x2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuadraticRootsRoundTrip(t *testing.T) {
	// Property: reconstructed roots satisfy the equation to high accuracy.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		r1 := rng.NormFloat64() * 1e3
		r2 := rng.NormFloat64() * 1e3
		a := 1 + rng.Float64()*10
		b := -a * (r1 + r2)
		c := a * r1 * r2
		x1, x2, err := QuadraticRoots(a, b, c)
		if err != nil {
			t.Fatalf("unexpected ErrNoRoot for real roots %g, %g", r1, r2)
		}
		lo, hi := math.Min(r1, r2), math.Max(r1, r2)
		if !ApproxEqual(x1, lo, 1e-7, 1e-7) || !ApproxEqual(x2, hi, 1e-7, 1e-7) {
			t.Fatalf("roots (%g,%g) != want (%g,%g)", x1, x2, lo, hi)
		}
	}
}

func TestQuadraticRootsCancellation(t *testing.T) {
	// b² >> 4ac: naive (-b+√disc)/(2a) would lose the small root entirely.
	// a=1e-10, b=-1, c=1e-10 → roots ≈ 1e-10 and 1e10.
	x1, x2, err := QuadraticRoots(1e-10, -1, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(x1, 1e-10, 1e-9, 0) {
		t.Errorf("small root = %g, want 1e-10", x1)
	}
	if !ApproxEqual(x2, 1e10, 1e-9, 0) {
		t.Errorf("large root = %g, want 1e10", x2)
	}
}

func TestQuadraticRootsTheorem1Regime(t *testing.T) {
	// The Theorem 1 quadratic for Hera/XScale, σ1=0.4, σ2=0.4, ρ=3:
	// a = λ/(σ1σ2), b = 1/σ1 + λ(R/σ1 + V/(σ1σ2)) − ρ, c = C + V/σ1.
	lambda, C, V, R := 3.38e-6, 300.0, 15.4, 300.0
	s1, s2, rho := 0.4, 0.4, 3.0
	a := lambda / (s1 * s2)
	b := 1/s1 + lambda*(R/s1+V/(s1*s2)) - rho
	c := C + V/s1
	x1, x2, err := QuadraticRoots(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if x1 <= 0 || x2 <= x1 {
		t.Fatalf("expected two positive roots, got %g, %g", x1, x2)
	}
	// Check they satisfy the equation.
	for _, x := range []float64{x1, x2} {
		res := a*x*x + b*x + c
		if math.Abs(res) > 1e-6*math.Abs(c) {
			t.Errorf("residual at %g: %g", x, res)
		}
	}
}

func TestQuadraticNoRoot(t *testing.T) {
	if _, _, err := QuadraticRoots(1, 0, 1); err != ErrNoRoot {
		t.Errorf("x²+1=0 should have no real root, got err=%v", err)
	}
	if _, _, err := QuadraticRoots(0, 0, 1); err != ErrNoRoot {
		t.Errorf("degenerate constant equation, got err=%v", err)
	}
}

func TestQuadraticLinearFallback(t *testing.T) {
	x1, x2, err := QuadraticRoots(0, 2, -8)
	if err != nil {
		t.Fatal(err)
	}
	if x1 != 4 || x2 != 4 {
		t.Errorf("linear root %g,%g; want 4,4", x1, x2)
	}
}

func TestQuadraticDoubleRoot(t *testing.T) {
	// (x-3)² = x² -6x + 9.
	x1, x2, err := QuadraticRoots(1, -6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(x1, 3, 1e-9, 0) || !ApproxEqual(x2, 3, 1e-9, 0) {
		t.Errorf("double root %g,%g; want 3,3", x1, x2)
	}
}

func TestDiscriminantSign(t *testing.T) {
	if Discriminant(1, 0, 1) >= 0 {
		t.Error("x²+1 should have negative discriminant")
	}
	if Discriminant(1, -3, 2) <= 0 {
		t.Error("x²-3x+2 should have positive discriminant")
	}
}

func TestBrentRootPolynomial(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 2*x - 5 } // root ≈ 2.0945514815
	x, err := BrentRoot(f, 2, 3, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2.0945514815423265) > 1e-9 {
		t.Errorf("root = %.12f", x)
	}
}

func TestBrentRootTranscendental(t *testing.T) {
	// e^x = 2x + 1 has a nonzero root ≈ 1.2564.
	f := func(x float64) float64 { return math.Exp(x) - 2*x - 1 }
	x, err := BrentRoot(f, 0.5, 3, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f(x)) > 1e-9 {
		t.Errorf("f(root) = %g", f(x))
	}
}

func TestBrentRootEndpointHits(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := BrentRoot(f, 0, 1, 1e-12); err != nil || x != 0 {
		t.Errorf("root at left endpoint: x=%g err=%v", x, err)
	}
	if x, err := BrentRoot(f, -1, 0, 1e-12); err != nil || x != 0 {
		t.Errorf("root at right endpoint: x=%g err=%v", x, err)
	}
}

func TestBrentRootNotBracketed(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := BrentRoot(f, -1, 1, 1e-12); err != ErrNotBracketed {
		t.Errorf("want ErrNotBracketed, got %v", err)
	}
}

func TestBrentRootInvalidInterval(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := BrentRoot(f, 1, 0, 1e-12); err != ErrInvalidInterval {
		t.Errorf("want ErrInvalidInterval, got %v", err)
	}
}

func TestBisectAgreesWithBrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		shift := rng.Float64()*4 - 2
		f := func(x float64) float64 { return math.Tanh(x - shift) }
		xb, err1 := BrentRoot(f, -10, 10, 1e-10)
		xs, err2 := BisectRoot(f, -10, 10, 1e-10)
		if err1 != nil || err2 != nil {
			t.Fatalf("err1=%v err2=%v", err1, err2)
		}
		if math.Abs(xb-xs) > 1e-8 {
			t.Fatalf("Brent %g vs bisect %g for shift %g", xb, xs, shift)
		}
	}
}

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3.7) * (x - 3.7) }
	x, err := GoldenSection(f, 0, 10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-3.7) > 1e-8 {
		t.Errorf("min at %g, want 3.7", x)
	}
}

func TestBrentMinQuadratic(t *testing.T) {
	f := func(x float64) float64 { return 2*(x-1.25)*(x-1.25) + 7 }
	x, err := BrentMin(f, -10, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1.25) > 1e-7 {
		t.Errorf("min at %g, want 1.25", x)
	}
}

func TestBrentMinOverheadShape(t *testing.T) {
	// The canonical overhead curve c/W + y + z·W is minimized at √(c/z).
	c, z := 402.667, 2.1125e-5
	f := func(w float64) float64 { return c/w + 3.0 + z*w }
	x, err := BrentMin(f, 1, 1e7, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(c / z)
	if !ApproxEqual(x, want, 1e-6, 0) {
		t.Errorf("min at %g, want %g", x, want)
	}
}

func TestMinimizeConvex1D(t *testing.T) {
	c, z := 300.0, 1e-5
	f := func(w float64) float64 { return c/w + z*w }
	want := math.Sqrt(c / z)
	for _, start := range []float64{1, 100, 1e4, 1e8} {
		x, err := MinimizeConvex1D(f, start, 1e-12)
		if err != nil {
			t.Fatalf("start=%g: %v", start, err)
		}
		if !ApproxEqual(x, want, 1e-5, 0) {
			t.Errorf("start=%g: min at %g, want %g", start, x, want)
		}
	}
}

func TestMinimizeConvex1DRejectsNonPositiveStart(t *testing.T) {
	_, err := MinimizeConvex1D(func(x float64) float64 { return x * x }, 0, 1e-9)
	if err != ErrInvalidInterval {
		t.Errorf("want ErrInvalidInterval, got %v", err)
	}
}

func TestGoldenSectionInvalid(t *testing.T) {
	if _, err := GoldenSection(func(x float64) float64 { return x }, 1, 0, 1e-9); err != ErrInvalidInterval {
		t.Errorf("want ErrInvalidInterval, got %v", err)
	}
}

package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOneMinusExpNegSmall(t *testing.T) {
	// For tiny x, 1 - e^-x ≈ x - x²/2; the naive form loses precision.
	for _, x := range []float64{1e-15, 1e-12, 1e-9, 1e-6, 1e-3} {
		got := OneMinusExpNeg(x)
		want := x - x*x/2 + x*x*x/6
		if !ApproxEqual(got, want, 1e-9, 0) {
			t.Errorf("OneMinusExpNeg(%g) = %g, want ≈ %g", x, got, want)
		}
	}
}

func TestOneMinusExpNegLarge(t *testing.T) {
	if got := OneMinusExpNeg(100); got != 1 {
		t.Errorf("OneMinusExpNeg(100) = %g, want 1", got)
	}
	if got := OneMinusExpNeg(0); got != 0 {
		t.Errorf("OneMinusExpNeg(0) = %g, want 0", got)
	}
}

func TestOneMinusExpNegProbabilityRange(t *testing.T) {
	// Property: result is a probability for non-negative inputs.
	f := func(x float64) bool {
		x = math.Abs(x)
		p := OneMinusExpNeg(x)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpm1Identity(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 10)
		if math.IsNaN(x) {
			return true
		}
		// exp(x)-1 and expm1 agree whenever exp is well conditioned.
		a := Expm1(x)
		b := math.Exp(x) - 1
		return ApproxEqual(a, b, 1e-9, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampPanicsOnReversedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Clamp(0, 1, 0) should panic")
		}
	}()
	Clamp(0, 1, 0)
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9, 0) {
		t.Error("nearby values should be approx-equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-9, 0) {
		t.Error("distant values should not be approx-equal")
	}
	if ApproxEqual(math.NaN(), math.NaN(), 1, 1) {
		t.Error("NaN never approx-equals anything")
	}
	if !ApproxEqual(math.Inf(1), math.Inf(1), 0, 0) {
		t.Error("equal infinities are equal")
	}
	if !ApproxEqual(0, 1e-15, 0, 1e-12) {
		t.Error("absolute tolerance should cover near-zero")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(0, 0); got != 0 {
		t.Errorf("RelErr(0,0) = %g", got)
	}
	if got := RelErr(100, 101); math.Abs(got-1.0/101) > 1e-12 {
		t.Errorf("RelErr(100,101) = %g", got)
	}
	// Symmetry property.
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return RelErr(a, b) == RelErr(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumCompensated(t *testing.T) {
	// 1 + 1e16 - 1e16 loses the 1 under naive summation order.
	xs := []float64{1, 1e16, -1e16}
	if got := Sum(xs); got != 1 {
		t.Errorf("Sum = %g, want 1", got)
	}
}

func TestSumManySmall(t *testing.T) {
	xs := make([]float64, 1_000_000)
	for i := range xs {
		xs[i] = 0.1
	}
	got := Sum(xs)
	if math.Abs(got-100000) > 1e-6 {
		t.Errorf("Sum of 1e6 × 0.1 = %.12f, want 100000", got)
	}
}

func TestAccumulatorMatchesSum(t *testing.T) {
	xs := []float64{1e-9, 1e9, -1e9, 3.5, -2.25, 1e-9}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	if got, want := acc.Total(), Sum(xs); got != want {
		t.Errorf("Accumulator.Total = %g, Sum = %g", got, want)
	}
	if acc.Count() != int64(len(xs)) {
		t.Errorf("Count = %d, want %d", acc.Count(), len(xs))
	}
	acc.Reset()
	if acc.Total() != 0 || acc.Count() != 0 {
		t.Error("Reset did not clear the accumulator")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 10, 11)
	if len(xs) != 11 {
		t.Fatalf("len = %d", len(xs))
	}
	if xs[0] != 0 || xs[10] != 10 {
		t.Errorf("endpoints %g..%g", xs[0], xs[10])
	}
	for i := 1; i < len(xs); i++ {
		if math.Abs(xs[i]-xs[i-1]-1) > 1e-12 {
			t.Errorf("step at %d: %g", i, xs[i]-xs[i-1])
		}
	}
}

func TestLogspace(t *testing.T) {
	xs := Logspace(1e-6, 1e-2, 5)
	if xs[0] != 1e-6 || xs[4] != 1e-2 {
		t.Errorf("endpoints %g..%g", xs[0], xs[4])
	}
	for i := 1; i < len(xs); i++ {
		ratio := xs[i] / xs[i-1]
		if math.Abs(ratio-10) > 1e-9 {
			t.Errorf("ratio at %d: %g, want 10", i, ratio)
		}
	}
}

func TestLinspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Linspace with n=1 should panic")
		}
	}()
	Linspace(0, 1, 1)
}

func TestLogspacePanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Logspace with lo=0 should panic")
		}
	}()
	Logspace(0, 1, 3)
}

func TestDerivative(t *testing.T) {
	// d/dx x³ = 3x² at x=2 → 12.
	got := Derivative(func(x float64) float64 { return x * x * x }, 2)
	if math.Abs(got-12) > 1e-4 {
		t.Errorf("Derivative = %g, want 12", got)
	}
}

func TestSecondDerivative(t *testing.T) {
	// d²/dx² x³ = 6x at x=2 → 12.
	got := SecondDerivative(func(x float64) float64 { return x * x * x }, 2)
	if math.Abs(got-12) > 1e-2 {
		t.Errorf("SecondDerivative = %g, want 12", got)
	}
}

package ckpt

import (
	"bytes"
	"strings"
	"testing"
)

func TestCommitRequiresVerification(t *testing.T) {
	s := New(2)
	s.Stage([]byte("state-a"))
	if _, err := s.Commit(0, 100); err != ErrNotVerified {
		t.Errorf("unverified commit: want ErrNotVerified, got %v", err)
	}
	s.MarkVerified()
	snap, err := s.Commit(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 1 || snap.Pattern != 0 || snap.Time != 100 {
		t.Errorf("snapshot metadata %+v", snap)
	}
	if string(snap.State) != "state-a" {
		t.Errorf("snapshot state %q", snap.State)
	}
}

func TestStageCopiesBytes(t *testing.T) {
	s := New(1)
	buf := []byte("original")
	s.Stage(buf)
	buf[0] = 'X' // mutate after staging
	s.MarkVerified()
	snap, err := s.Commit(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap.State) != "original" {
		t.Errorf("staging did not copy: %q", snap.State)
	}
}

func TestRestageResetsVerification(t *testing.T) {
	s := New(1)
	s.Stage([]byte("a"))
	s.MarkVerified()
	s.Stage([]byte("b")) // re-staging must invalidate the earlier verify
	if _, err := s.Commit(0, 0); err != ErrNotVerified {
		t.Errorf("want ErrNotVerified after restage, got %v", err)
	}
}

func TestCommitConsumesVerification(t *testing.T) {
	s := New(1)
	s.Stage([]byte("a"))
	s.MarkVerified()
	if _, err := s.Commit(0, 0); err != nil {
		t.Fatal(err)
	}
	// A second commit without fresh stage+verify must fail.
	if _, err := s.Commit(1, 1); err != ErrNotVerified {
		t.Errorf("want ErrNotVerified on double commit, got %v", err)
	}
}

func TestRecoverReturnsCopy(t *testing.T) {
	s := New(1)
	s.Stage([]byte("golden"))
	s.MarkVerified()
	if _, err := s.Commit(0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	again, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, []byte("golden")) {
		t.Errorf("recovery returned aliased state: %q", again)
	}
}

func TestRecoverEmpty(t *testing.T) {
	s := New(1)
	if _, err := s.Recover(); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	if _, err := s.Latest(); err != ErrEmpty {
		t.Errorf("Latest on empty: want ErrEmpty, got %v", err)
	}
}

func TestRingEviction(t *testing.T) {
	s := New(2)
	for i := 0; i < 5; i++ {
		s.Stage([]byte{byte('a' + i)})
		s.MarkVerified()
		if _, err := s.Commit(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", s.Depth())
	}
	snap, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 5 || snap.State[0] != 'e' {
		t.Errorf("latest = %+v, want seq 5 / state 'e'", snap)
	}
}

func TestStats(t *testing.T) {
	s := New(3)
	for i := 0; i < 3; i++ {
		s.Stage([]byte("12345678")) // 8 bytes
		s.MarkVerified()
		if _, err := s.Commit(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Commits != 3 || st.Recoveries != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.BytesWritten != 24 || st.BytesRead != 8 {
		t.Errorf("byte accounting %+v", st)
	}
	if !strings.Contains(st.String(), "commits=3") {
		t.Errorf("Stats.String() = %q", st.String())
	}
}

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

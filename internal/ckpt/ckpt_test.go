package ckpt

import (
	"bytes"
	"strings"
	"testing"
)

func TestCommitRequiresVerification(t *testing.T) {
	s := New(2)
	s.Stage([]byte("state-a"))
	if _, err := s.Commit(0, 100); err != ErrNotVerified {
		t.Errorf("unverified commit: want ErrNotVerified, got %v", err)
	}
	s.MarkVerified()
	snap, err := s.Commit(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 1 || snap.Pattern != 0 || snap.Time != 100 {
		t.Errorf("snapshot metadata %+v", snap)
	}
	if string(snap.State) != "state-a" {
		t.Errorf("snapshot state %q", snap.State)
	}
}

func TestStageCopiesBytes(t *testing.T) {
	s := New(1)
	buf := []byte("original")
	s.Stage(buf)
	buf[0] = 'X' // mutate after staging
	s.MarkVerified()
	snap, err := s.Commit(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap.State) != "original" {
		t.Errorf("staging did not copy: %q", snap.State)
	}
}

func TestRestageResetsVerification(t *testing.T) {
	s := New(1)
	s.Stage([]byte("a"))
	s.MarkVerified()
	s.Stage([]byte("b")) // re-staging must invalidate the earlier verify
	if _, err := s.Commit(0, 0); err != ErrNotVerified {
		t.Errorf("want ErrNotVerified after restage, got %v", err)
	}
}

func TestCommitConsumesVerification(t *testing.T) {
	s := New(1)
	s.Stage([]byte("a"))
	s.MarkVerified()
	if _, err := s.Commit(0, 0); err != nil {
		t.Fatal(err)
	}
	// A second commit without fresh stage+verify must fail.
	if _, err := s.Commit(1, 1); err != ErrNotVerified {
		t.Errorf("want ErrNotVerified on double commit, got %v", err)
	}
}

func TestRecoverReturnsCopy(t *testing.T) {
	s := New(1)
	s.Stage([]byte("golden"))
	s.MarkVerified()
	if _, err := s.Commit(0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	again, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, []byte("golden")) {
		t.Errorf("recovery returned aliased state: %q", again)
	}
}

func TestRecoverEmpty(t *testing.T) {
	s := New(1)
	if _, err := s.Recover(); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	if _, err := s.Latest(); err != ErrEmpty {
		t.Errorf("Latest on empty: want ErrEmpty, got %v", err)
	}
}

func TestRingEviction(t *testing.T) {
	s := New(2)
	for i := 0; i < 5; i++ {
		s.Stage([]byte{byte('a' + i)})
		s.MarkVerified()
		if _, err := s.Commit(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", s.Depth())
	}
	snap, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 5 || snap.State[0] != 'e' {
		t.Errorf("latest = %+v, want seq 5 / state 'e'", snap)
	}
}

func TestStats(t *testing.T) {
	s := New(3)
	for i := 0; i < 3; i++ {
		s.Stage([]byte("12345678")) // 8 bytes
		s.MarkVerified()
		if _, err := s.Commit(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Commits != 3 || st.Recoveries != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.BytesWritten != 24 || st.BytesRead != 8 {
		t.Errorf("byte accounting %+v", st)
	}
	if !strings.Contains(st.String(), "commits=3") {
		t.Errorf("Stats.String() = %q", st.String())
	}
}

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestResetRestoresFreshState(t *testing.T) {
	s := New(2)
	for i := 0; i < 4; i++ {
		s.Stage([]byte{byte('a' + i)})
		s.MarkVerified()
		if _, err := s.Commit(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Depth() != 0 {
		t.Errorf("depth after Reset = %d", s.Depth())
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("stats after Reset = %+v", st)
	}
	if _, err := s.Latest(); err != ErrEmpty {
		t.Errorf("Latest after Reset: want ErrEmpty, got %v", err)
	}
	// A staged-but-uncommitted snapshot must not survive the reset.
	if _, err := s.Commit(0, 0); err != ErrNotVerified {
		t.Errorf("commit after Reset without stage: want ErrNotVerified, got %v", err)
	}
	// The store behaves exactly like a new one afterwards.
	s.Stage([]byte("fresh"))
	s.MarkVerified()
	snap, err := s.Commit(7, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 1 || string(snap.State) != "fresh" {
		t.Errorf("first commit after Reset: seq=%d state=%q", snap.Seq, snap.State)
	}
}

func TestCommitRecyclesBuffersAcrossReset(t *testing.T) {
	s := New(1)
	state := bytes.Repeat([]byte("x"), 1024)
	commit := func() {
		s.Stage(state)
		s.MarkVerified()
		if _, err := s.Commit(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	commit()
	commit() // warm the spare pool via eviction
	allocs := testing.AllocsPerRun(50, func() {
		s.Reset()
		commit()
		commit()
	})
	if allocs > 0 {
		t.Errorf("reset+commit cycle allocates %.1f times per run, want 0", allocs)
	}
}

func TestRecoverViewAliasesAndCounts(t *testing.T) {
	s := New(1)
	s.Stage([]byte("view-state"))
	s.MarkVerified()
	if _, err := s.Commit(3, 1); err != nil {
		t.Fatal(err)
	}
	view, err := s.RecoverView()
	if err != nil {
		t.Fatal(err)
	}
	if string(view) != "view-state" {
		t.Errorf("view = %q", view)
	}
	copied, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(view, copied) {
		t.Error("RecoverView and Recover disagree")
	}
	st := s.Stats()
	if st.Recoveries != 2 || st.BytesRead != 2*int64(len("view-state")) {
		t.Errorf("stats after view+copy recover: %+v", st)
	}
	if _, err := New(1).RecoverView(); err != ErrEmpty {
		t.Errorf("empty RecoverView: want ErrEmpty, got %v", err)
	}
}

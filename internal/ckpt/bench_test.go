package ckpt

import "testing"

func BenchmarkStageCommitRecover(b *testing.B) {
	s := New(2)
	state := make([]byte, 8192)
	b.SetBytes(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Stage(state)
		s.MarkVerified()
		if _, err := s.Commit(i, float64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}

// Package ckpt implements the verified in-memory checkpoint store used by
// the full-stack simulator. A checkpoint is a byte snapshot of workload
// state taken only after a successful verification — the paper's
// "verified checkpoint" discipline, which guarantees that rollback data
// is never silently corrupted.
package ckpt

import (
	"errors"
	"fmt"
)

// Errors returned by the store.
var (
	// ErrEmpty indicates recovery was requested before any checkpoint
	// was committed.
	ErrEmpty = errors.New("ckpt: no checkpoint available")
	// ErrNotVerified indicates a commit was attempted without marking the
	// snapshot verified first.
	ErrNotVerified = errors.New("ckpt: snapshot not verified")
)

// Snapshot is one committed checkpoint.
type Snapshot struct {
	// Seq is the 1-based commit sequence number.
	Seq int
	// Pattern is the index of the pattern whose end this snapshot marks.
	Pattern int
	// Time is the simulation time of the commit.
	Time float64
	// State is the checkpointed bytes (a private copy).
	State []byte
}

// Store keeps the most recent checkpoints in a bounded ring. The zero
// value is not usable; call New.
type Store struct {
	ring     []Snapshot
	capacity int
	seq      int
	staged   []byte
	verified bool

	// spare holds state buffers harvested from evicted or reset
	// snapshots, recycled by later commits so a long-lived store's
	// steady state allocates nothing per checkpoint.
	spare [][]byte

	// Stats.
	commits      int
	recoveries   int
	bytesWritten int64
	bytesRead    int64
}

// New creates a store that retains the capacity most recent checkpoints.
// capacity must be at least 1; the paper's model needs only the latest
// verified checkpoint, but a deeper ring supports multi-level extensions.
func New(capacity int) *Store {
	if capacity < 1 {
		panic("ckpt: capacity must be ≥ 1")
	}
	return &Store{capacity: capacity}
}

// Stage registers candidate state for the next commit. The bytes are
// copied immediately so later workload mutation cannot leak into the
// snapshot. Staging resets the verified flag: verification must happen
// *after* the state to be checkpointed is final.
func (s *Store) Stage(state []byte) {
	s.staged = append(s.staged[:0], state...)
	s.verified = false
}

// MarkVerified records that the staged state passed verification.
func (s *Store) MarkVerified() {
	s.verified = true
}

// Commit promotes the staged, verified state to a durable checkpoint.
// It fails with ErrNotVerified if MarkVerified was not called after the
// last Stage — committing unverified state is exactly the corrupted-
// checkpoint hazard the verified-checkpoint discipline exists to prevent.
func (s *Store) Commit(pattern int, now float64) (Snapshot, error) {
	if !s.verified {
		return Snapshot{}, ErrNotVerified
	}
	s.seq++
	snap := Snapshot{
		Seq:     s.seq,
		Pattern: pattern,
		Time:    now,
		State:   append(s.takeSpare(), s.staged...),
	}
	if len(s.ring) < s.capacity {
		s.ring = append(s.ring, snap)
	} else {
		s.putSpare(s.ring[0].State)
		copy(s.ring, s.ring[1:])
		s.ring[len(s.ring)-1] = snap
	}
	s.commits++
	s.bytesWritten += int64(len(snap.State))
	s.verified = false
	return snap, nil
}

// takeSpare returns an empty recycled buffer, or nil when none is
// banked.
func (s *Store) takeSpare() []byte {
	if n := len(s.spare); n > 0 {
		buf := s.spare[n-1]
		s.spare = s.spare[:n-1]
		return buf[:0]
	}
	return nil
}

// putSpare banks a retired state buffer for reuse.
func (s *Store) putSpare(buf []byte) {
	if buf != nil {
		s.spare = append(s.spare, buf[:0])
	}
}

// Reset returns the store to its freshly constructed state — empty ring,
// zero sequence and counters — while banking the retired snapshot
// buffers for reuse by later commits. It lets a pooled execution reuse
// one store across independent runs without per-run allocation.
//
// Because buffers are recycled, Snapshot.State slices previously
// returned by Commit or Latest are invalidated by Reset (and by the
// eviction of their snapshot); Recover is the way to obtain a caller-
// owned copy.
func (s *Store) Reset() {
	for i := range s.ring {
		s.putSpare(s.ring[i].State)
		s.ring[i] = Snapshot{}
	}
	s.ring = s.ring[:0]
	s.seq = 0
	s.staged = s.staged[:0]
	s.verified = false
	s.commits = 0
	s.recoveries = 0
	s.bytesWritten = 0
	s.bytesRead = 0
}

// Latest returns the most recent committed checkpoint.
func (s *Store) Latest() (Snapshot, error) {
	if len(s.ring) == 0 {
		return Snapshot{}, ErrEmpty
	}
	return s.ring[len(s.ring)-1], nil
}

// Recover returns a fresh copy of the latest checkpoint's state and
// counts the read. Mutating the returned slice does not affect the store.
func (s *Store) Recover() ([]byte, error) {
	snap, err := s.Latest()
	if err != nil {
		return nil, err
	}
	s.recoveries++
	s.bytesRead += int64(len(snap.State))
	return append([]byte(nil), snap.State...), nil
}

// RecoverView returns the latest checkpoint's state without copying,
// counting the read exactly as Recover does. The returned slice aliases
// the stored snapshot: it must be treated as read-only and is
// invalidated by the next Commit or Reset. It exists for the
// replication hot path, where the workload's Restore copies the bytes
// out immediately.
func (s *Store) RecoverView() ([]byte, error) {
	if len(s.ring) == 0 {
		return nil, ErrEmpty
	}
	state := s.ring[len(s.ring)-1].State
	s.recoveries++
	s.bytesRead += int64(len(state))
	return state, nil
}

// Depth returns how many checkpoints are currently retained.
func (s *Store) Depth() int { return len(s.ring) }

// Stats summarizes store activity.
type Stats struct {
	Commits      int
	Recoveries   int
	BytesWritten int64
	BytesRead    int64
}

// Stats returns activity counters.
func (s *Store) Stats() Stats {
	return Stats{
		Commits:      s.commits,
		Recoveries:   s.recoveries,
		BytesWritten: s.bytesWritten,
		BytesRead:    s.bytesRead,
	}
}

// String renders the stats compactly.
func (st Stats) String() string {
	return fmt.Sprintf("commits=%d recoveries=%d written=%dB read=%dB",
		st.Commits, st.Recoveries, st.BytesWritten, st.BytesRead)
}

// Command figures regenerates the data series behind Figures 2–14 of the
// paper (and the Theorem 2 scaling figure) as gnuplot-style .dat files.
//
// Usage:
//
//	figures -out data/                # all figures
//	figures -fig 4 -out data/         # just Figure 4
//	figures -fig 2 -points 101 -stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"respeed"
	"respeed/internal/tablefmt"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (2–14); 0 = all")
	out := flag.String("out", "figures-data", "output directory for .dat files")
	points := flag.Int("points", 0, "samples per sweep (0 = default)")
	stdout := flag.Bool("stdout", false, "write series to stdout instead of files")
	flag.Parse()

	var ids []string
	if *fig != 0 {
		ids = []string{fmt.Sprintf("figure-%d", *fig)}
	} else {
		for n := 2; n <= 14; n++ {
			ids = append(ids, fmt.Sprintf("figure-%d", n))
		}
		ids = append(ids, "theorem2-scaling", "pareto-frontier")
	}

	opts := respeed.DefaultExperimentOpts()
	if *points > 0 {
		opts.Points = *points
	}

	if !*stdout {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}

	for _, id := range ids {
		e, ok := respeed.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q\n", id)
			os.Exit(1)
		}
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, f := range res.Figures {
			if *stdout {
				fmt.Printf("## %s (x=%s%s)\n", f.Name, f.XLabel, logSuffix(f.LogX))
				if err := tablefmt.WriteDat(os.Stdout, f.X, f.Series...); err != nil {
					fmt.Fprintf(os.Stderr, "figures: %v\n", err)
					os.Exit(1)
				}
				continue
			}
			path := filepath.Join(*out, f.Name+".dat")
			fh, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			err = tablefmt.WriteDat(fh, f.X, f.Series...)
			cerr := fh.Close()
			if err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		for _, n := range res.Notes {
			fmt.Printf("   %s\n", n)
		}
	}
}

func logSuffix(log bool) string {
	if log {
		return ", log scale"
	}
	return ""
}

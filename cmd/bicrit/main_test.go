package main

import (
	"strings"
	"testing"
)

func TestInfeasibleRhoStillPrintsGrid(t *testing.T) {
	// Regression: -grid used to be skipped entirely when ρ is infeasible,
	// because main exited on the Solve error before the grid block — even
	// though Solve returns the fully evaluated grid alongside
	// ErrInfeasible. ρ=0.5 is below 1/σmax=1, infeasible for every pair.
	var out, errOut strings.Builder
	code := run([]string{"-config", "Hera/XScale", "-rho", "0.5", "-grid"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (infeasible)", code)
	}
	s := out.String()
	if !strings.Contains(s, "BiCrit has no solution at this bound.") {
		t.Errorf("missing infeasibility message:\n%s", s)
	}
	if !strings.Contains(s, "ρmin") {
		t.Errorf("grid header missing — grid was not printed:\n%s", s)
	}
	// Hera/XScale has 5 speeds → 25 pairs, all infeasible at ρ=0.5.
	if n := strings.Count(s, "no"); n < 25 {
		t.Errorf("expected ≥ 25 infeasible grid rows, found %d:\n%s", n, s)
	}
}

func TestFeasibleRhoGridUnchanged(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-config", "Hera/XScale", "-rho", "3", "-grid"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, want 0 (stderr: %s)", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "Optimal:") || !strings.Contains(s, "ρmin") {
		t.Errorf("feasible run should print the optimum and the grid:\n%s", s)
	}
}

func TestUnknownConfig(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-config", "No/Such"}, &out, &errOut); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown configuration") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestListConfigs(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if !strings.Contains(out.String(), "Hera/XScale") {
		t.Errorf("list output: %s", out.String())
	}
}

// Command bicrit solves the BiCrit problem for one platform/processor
// configuration and performance bound: it prints the per-σ1 best second
// speed (the Section 4.2 table shape), the full speed-pair grid, and the
// optimal solution.
//
// Usage:
//
//	bicrit [-config "Hera/XScale"] [-rho 3] [-grid] [-exact]
//	bicrit -list
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"respeed"
	"respeed/internal/tablefmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with testable plumbing: flags come from args, output goes
// to the given writers, and the exit code is returned instead of passed
// to os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bicrit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configName := fs.String("config", "Hera/XScale", "platform/processor configuration name")
	rho := fs.Float64("rho", 3, "performance bound ρ (expected seconds per work unit)")
	grid := fs.Bool("grid", false, "print the full σ1×σ2 evaluation grid")
	exact := fs.Bool("exact", false, "also solve with the exact (non-Taylor) optimizer")
	list := fs.Bool("list", false, "list catalog configurations and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, name := range respeed.ConfigNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}

	cfg, ok := respeed.ConfigByName(*configName)
	if !ok {
		fmt.Fprintf(stderr, "bicrit: unknown configuration %q (use -list)\n", *configName)
		return 1
	}
	p := respeed.ParamsFor(cfg)
	fmt.Fprintf(stdout, "Configuration %s: λ=%.3g, C=%.0fs, V=%.1fs, R=%.0fs, κ=%.0f, Pidle=%.1fmW, Pio=%.2fmW\n",
		cfg.Name(), p.Lambda, p.C, p.V, p.R, p.Kappa, p.Pidle, p.Pio)
	fmt.Fprintf(stdout, "Performance bound ρ=%g\n\n", *rho)

	// Per-σ1 table (the paper's Section 4.2 shape).
	tab := tablefmt.New("σ1", "Best σ2", "Wopt", "E(Wopt,σ1,σ2)/Wopt", "T/W")
	for _, r := range respeed.Sigma1Table(cfg, *rho) {
		if !r.Feasible {
			tab.AddRow(tablefmt.Cell(r.Sigma1), "-", "-", "-", "-")
			continue
		}
		tab.AddRowValues(r.Sigma1, r.Sigma2, math.Floor(r.W),
			math.Floor(r.EnergyOverhead), r.TimeOverhead)
	}
	fmt.Fprintln(stdout, tab.String())

	sol, err := respeed.Solve(cfg, *rho)
	if err != nil {
		// Solve still returns the fully evaluated (all-infeasible) grid
		// alongside ErrInfeasible; honor -grid before giving up.
		fmt.Fprintln(stdout, "BiCrit has no solution at this bound.")
		if *grid {
			printGrid(stdout, sol)
		}
		return 2
	}
	b := sol.Best
	fmt.Fprintf(stdout, "Optimal: σ1=%g σ2=%g  Wopt=%.1f  E/W=%.2f  T/W=%.4f\n",
		b.Sigma1, b.Sigma2, b.W, b.EnergyOverhead, b.TimeOverhead)

	if one, err := respeed.SolveSingleSpeed(cfg, *rho); err == nil {
		gain := (one.Best.EnergyOverhead - b.EnergyOverhead) / one.Best.EnergyOverhead
		fmt.Fprintf(stdout, "Single-speed baseline: σ=%g  Wopt=%.1f  E/W=%.2f  (two-speed saving: %.1f%%)\n",
			one.Best.Sigma1, one.Best.W, one.Best.EnergyOverhead, 100*gain)
	} else {
		fmt.Fprintln(stdout, "Single-speed baseline: infeasible (two speeds strictly required)")
	}

	if *exact {
		best, _, err := respeed.SolveExact(cfg, *rho)
		if err != nil {
			fmt.Fprintln(stdout, "Exact optimizer: infeasible")
		} else {
			fmt.Fprintf(stdout, "Exact optimizer:  σ1=%g σ2=%g  Wopt=%.1f  E/W=%.2f\n",
				best.Sigma1, best.Sigma2, best.W, best.EnergyOverhead)
		}
	}

	if *grid {
		printGrid(stdout, sol)
	}
	return 0
}

// printGrid renders the full σ1×σ2 evaluation grid.
func printGrid(w io.Writer, sol respeed.Solution) {
	fmt.Fprintln(w)
	gt := tablefmt.New("σ1", "σ2", "ρmin", "feasible", "Wopt", "E/W")
	for _, r := range sol.Pairs {
		if r.Feasible {
			gt.AddRowValues(r.Sigma1, r.Sigma2, r.RhoMin, "yes", math.Floor(r.W), r.EnergyOverhead)
		} else {
			gt.AddRowValues(r.Sigma1, r.Sigma2, r.RhoMin, "no", "-", "-")
		}
	}
	fmt.Fprintln(w, gt.String())
}

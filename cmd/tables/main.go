// Command tables regenerates the four Section 4.2 tables of the paper
// (Hera/XScale at ρ = 8, 3, 1.775, 1.4), and optionally the ρ=3 tables
// for all eight configurations.
//
// Usage:
//
//	tables [-all]
package main

import (
	"flag"
	"fmt"
	"os"

	"respeed"
)

func main() {
	all := flag.Bool("all", false, "also print the ρ=3 tables for every configuration")
	flag.Parse()

	ids := []string{"table-rho8", "table-rho3", "table-rho1775", "table-rho14"}
	if *all {
		ids = append(ids, "tables-all-configs")
	}
	opts := respeed.DefaultExperimentOpts()
	for _, id := range ids {
		e, ok := respeed.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "tables: experiment %q missing\n", id)
			os.Exit(1)
		}
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range res.Tables {
			fmt.Printf("== %s\n%s\n", t.Caption, t.Table.String())
		}
		for _, n := range res.Notes {
			fmt.Printf("   %s\n", n)
		}
		fmt.Println()
	}
}

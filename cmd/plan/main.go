// Command plan produces an end-to-end execution plan for an application:
// the BiCrit-optimal pattern, the pattern partition of the total work,
// expected makespan/energy, and (optionally) a full-stack simulated dry
// run with a waste breakdown.
//
// Usage:
//
//	plan [-config "Hera/XScale"] [-rho 3] [-work 604800] [-simulate] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"respeed"
)

func main() {
	configName := flag.String("config", "Hera/XScale", "configuration name")
	rho := flag.Float64("rho", 3, "performance bound (seconds per work unit)")
	work := flag.Float64("work", 7*24*3600, "total application work in work units (default: one week at full speed)")
	simulate := flag.Bool("simulate", false, "dry-run the plan on the full-stack simulator (scaled-down work)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	cfg, ok := respeed.ConfigByName(*configName)
	if !ok {
		fmt.Fprintf(os.Stderr, "plan: unknown configuration %q\n", *configName)
		os.Exit(1)
	}
	plan, err := respeed.PlanApplication(cfg, *rho, *work)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plan: %v\n", err)
		os.Exit(2)
	}

	fmt.Println(plan.String())
	fmt.Printf("  patterns           : %d full × W=%.0f + final %.0f\n",
		plan.FullPatterns, plan.Best.W, plan.LastW)
	fmt.Printf("  expected makespan  : %.0f s (%.2f days)\n",
		plan.ExpectedMakespan, plan.ExpectedMakespan/86400)
	fmt.Printf("  error-free baseline: %.0f s (overhead %.2f%%)\n",
		plan.ErrorFreeMakespan, 100*plan.Overhead())
	fmt.Printf("  expected energy    : %.4g mW·s\n", plan.ExpectedEnergy)
	fmt.Printf("  99.7%% margin       : %.0f s\n", plan.SafetyMargin(3))
	if gain, err := respeed.TwoSpeedGain(cfg, *rho); err == nil && gain > 0 {
		fmt.Printf("  two-speed saving   : %.1f%% vs the best single speed\n", 100*gain)
	}

	if *simulate {
		// Dry-run a scaled-down version (error rate boosted by the same
		// factor the work is shrunk, keeping errors-per-pattern realistic).
		const scale = 200.0
		ec := plan.ExecConfig()
		ec.TotalWork = *work / scale
		ec.Costs.LambdaS *= scale
		rec := respeed.NewTrace(0)
		ec.Trace = rec
		rep, err := respeed.RunWorkload(ec, respeed.NewHeatWorkload(256, 0.25), *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plan: simulate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ndry run (work ÷%g, λ ×%g):\n", scale, scale)
		fmt.Printf("  makespan %.0f s, energy %.4g mW·s, %d patterns, %d attempts\n",
			rep.Makespan, rep.Energy, rep.Patterns, rep.Attempts)
		fmt.Printf("  %d SDCs injected, %d detected, %d fail-stops\n",
			rep.SilentInjected, rep.SilentDetected, rep.FailStops)
		if waste, err := respeed.AnalyzeTrace(rec.Events()); err == nil {
			fmt.Printf("  %s\n", waste.String())
		}
	}
}

// Command benchcmp compares `go test -bench` output against the
// repository's JSON benchmark baseline (BENCH_engine.json) and prints a
// per-benchmark delta table.
//
// Timing columns are report-only by design: ns/op from shared CI
// runners is too noisy to gate merges on, so the table in the build log
// is read by a human. The allocation and byte columns, however, are
// deterministic — after the benchmarks' own warmup they count discrete
// events, not scheduler luck — so baseline records marked "gate": true
// fail the run (exit 1) under -gate when their allocs/op or B/op
// regress beyond tolerance. Hard per-loop pins live in the test suite
// (TestRunPatternNoAllocs and friends); the gate catches the fan-out
// paths whose budgets are call-level, not loop-level.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./internal/engine/ | benchcmp -baseline BENCH_engine.json
//	benchcmp -baseline BENCH_engine.json -gate bench-output.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type baseline struct {
	Description string           `json:"description"`
	Benchmarks  []baselineRecord `json:"benchmarks"`
}

type baselineRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Gate marks the record as merge-gating under -gate: its alloc and
	// byte columns (never ns/op) must stay within gateTolerance of the
	// baseline.
	Gate bool `json:"gate,omitempty"`
}

// Gate tolerance: the measured value may exceed the baseline by 50%
// plus a small absolute headroom before failing. The relative slack
// absorbs rounding of per-op averages at low iteration counts; the
// absolute slack keeps near-zero baselines (4 allocs) from tripping on
// a single extra allocation of executor warmup.
const (
	gateRelTolerance   = 1.5
	gateAllocsHeadroom = 8
	gateBytesHeadroom  = 2048
)

type measurement struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_engine.json", "JSON benchmark baseline to compare against")
	gate := flag.Bool("gate", false, "fail (exit 1) when a gated benchmark's allocs/op or B/op regress beyond tolerance")
	flag.Parse()

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBenchOutput(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	report(os.Stdout, base, current)
	if *gate {
		if failures := checkGates(base, current); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "benchcmp: GATE:", f)
			}
			os.Exit(1)
		}
		fmt.Println("benchcmp: all gated benchmarks within alloc/byte tolerance")
	}
}

// checkGates compares every gated baseline record's deterministic
// columns against the measured run. A gated benchmark that was not run
// or ran without -benchmem is itself a failure — otherwise the gate
// silently evaporates when a name changes.
func checkGates(base *baseline, current map[string]measurement) []string {
	var failures []string
	for _, b := range base.Benchmarks {
		if !b.Gate {
			continue
		}
		m, ok := lookup(current, b.Name)
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: gated benchmark not present in run", shorten(b.Name)))
			continue
		}
		if !m.hasMem {
			failures = append(failures, fmt.Sprintf("%s: gated benchmark ran without -benchmem", shorten(b.Name)))
			continue
		}
		if limit := b.AllocsPerOp*gateRelTolerance + gateAllocsHeadroom; m.allocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op exceeds gate %.0f (baseline %.0f)",
				shorten(b.Name), m.allocsPerOp, limit, b.AllocsPerOp))
		}
		if limit := b.BytesPerOp*gateRelTolerance + gateBytesHeadroom; m.bytesPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.0f B/op exceeds gate %.0f (baseline %.0f)",
				shorten(b.Name), m.bytesPerOp, limit, b.BytesPerOp))
		}
	}
	return failures
}

func readBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return &b, nil
}

// parseBenchOutput extracts measurements from standard `go test -bench`
// output. Package headers ("pkg: ...") qualify subsequent benchmark
// names, matching the fully-qualified names the baseline stores.
func parseBenchOutput(r io.Reader) (map[string]measurement, error) {
	out := make(map[string]measurement)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		// Expect: Name  N  ns ns/op [B B/op allocs allocs/op]
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if pkg != "" {
			name = pkg + "." + name
		}
		var m measurement
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				m.nsPerOp, ok = v, true
			case "B/op":
				m.bytesPerOp, m.hasMem = v, true
			case "allocs/op":
				m.allocsPerOp, m.hasMem = v, true
			}
		}
		if ok {
			out[name] = m
		}
	}
	return out, sc.Err()
}

// trimProcSuffix removes the -GOMAXPROCS suffix go test appends to
// benchmark names when GOMAXPROCS > 1 ("BenchmarkFoo-4" → "BenchmarkFoo").
// Sub-benchmark names may legitimately end in -<digits> (PerNodeFaults/
// nodes-4), so callers try an exact match before falling back to this.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// lookup finds the measurement for a baseline name: exact first, then
// any measured name whose proc suffix trims down to it.
func lookup(current map[string]measurement, name string) (measurement, bool) {
	if m, ok := current[name]; ok {
		return m, true
	}
	for k, m := range current {
		if trimProcSuffix(k) == name {
			return m, true
		}
	}
	return measurement{}, false
}

func report(w io.Writer, base *baseline, current map[string]measurement) {
	fmt.Fprintf(w, "benchcmp: comparing against baseline (%d reference benchmarks)\n", len(base.Benchmarks))
	fmt.Fprintf(w, "%-62s %14s %14s %9s %16s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs old→new")
	matched := 0
	for _, b := range base.Benchmarks {
		m, ok := lookup(current, b.Name)
		if !ok {
			fmt.Fprintf(w, "%-62s %14s %14s %9s %16s\n", shorten(b.Name), fmtNs(b.NsPerOp), "-", "-", "not run")
			continue
		}
		matched++
		allocs := "n/a"
		if m.hasMem {
			allocs = fmt.Sprintf("%.0f→%.0f", b.AllocsPerOp, m.allocsPerOp)
		}
		fmt.Fprintf(w, "%-62s %14s %14s %9s %16s\n",
			shorten(b.Name), fmtNs(b.NsPerOp), fmtNs(m.nsPerOp), delta(b.NsPerOp, m.nsPerOp), allocs)
	}
	for name := range current {
		if !inBaseline(base, name) {
			fmt.Fprintf(w, "%-62s %14s %14s %9s %16s\n", shorten(name), "-", fmtNs(current[name].nsPerOp), "new", "")
		}
	}
	fmt.Fprintf(w, "benchcmp: %d/%d baseline benchmarks matched (timing report-only; alloc/byte gates enforced under -gate)\n",
		matched, len(base.Benchmarks))
}

func inBaseline(base *baseline, name string) bool {
	trimmed := trimProcSuffix(name)
	for _, b := range base.Benchmarks {
		if b.Name == name || b.Name == trimmed {
			return true
		}
	}
	return false
}

// shorten drops the module prefix for readability.
func shorten(name string) string {
	return strings.TrimPrefix(name, "respeed/internal/")
}

func fmtNs(v float64) string {
	if v >= 100 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

func delta(old, new float64) string {
	if old == 0 {
		return "?"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// Command simulate validates the analytical model against Monte-Carlo
// sampled executions: the abstract renewal process (Propositions 1–5)
// and, with -exec, the full-stack simulator driving a real workload
// through fault injection, digest verification, checkpointing and
// recovery.
//
// Usage:
//
//	simulate [-config "Hera/XScale"] [-rho 3] [-n 100000] [-boost 50] [-seed 42]
//	simulate -exec [-workload heat] [-trace]
//	simulate -scenario cluster-twolevel|partial-failstop [-reps 100]
//	simulate -spec examples/spec/weibull-failstop.json [-reps 100]
//
// Scenario mode runs the unified engine's composed scenarios — policy
// combinations the original siloed simulators could not express:
// a multi-node cluster under two-level (memory+disk) checkpointing, or
// partial verifications with fail-stop errors in the mix. Spec mode
// runs the same engine from a declarative JSON scenario document (CSV
// fault-trace references resolve relative to the spec file).
package main

import (
	"flag"
	"fmt"
	"os"

	"respeed"
	"respeed/internal/tablefmt"
)

func main() {
	configName := flag.String("config", "Hera/XScale", "configuration name")
	rho := flag.Float64("rho", 3, "performance bound")
	n := flag.Int("n", 100000, "Monte-Carlo replications")
	boost := flag.Float64("boost", 50, "error-rate multiplier (λ×boost) so errors are frequent")
	seed := flag.Uint64("seed", 42, "random seed")
	execMode := flag.Bool("exec", false, "run the full-stack executable simulator instead")
	wlName := flag.String("workload", "heat", "exec workload: heat | stream | matvec")
	showTrace := flag.Bool("trace", false, "print the execution schedule (exec mode)")
	scenarioName := flag.String("scenario", "", "run a composed engine scenario: cluster-twolevel | partial-failstop")
	specPath := flag.String("spec", "", "run a declarative scenario spec from a JSON file")
	reps := flag.Int("reps", 100, "scenario replications")
	flag.Parse()

	cfg, ok := respeed.ConfigByName(*configName)
	if !ok {
		fmt.Fprintf(os.Stderr, "simulate: unknown configuration %q\n", *configName)
		os.Exit(1)
	}
	cfg.Platform.Lambda *= *boost

	if *specPath != "" {
		runSpec(cfg, *specPath, *seed, *reps)
		return
	}
	if *scenarioName != "" {
		runScenario(cfg, *scenarioName, *seed, *reps)
		return
	}
	if *execMode {
		runExec(cfg, *wlName, *seed, *showTrace)
		return
	}

	p := respeed.ParamsFor(cfg)
	sol, err := respeed.Solve(cfg, *rho)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v (try a larger -rho or smaller -boost)\n", err)
		os.Exit(2)
	}
	b := sol.Best
	plan := respeed.Plan{W: b.W, Sigma1: b.Sigma1, Sigma2: b.Sigma2}
	fmt.Printf("%s at λ×%g, ρ=%g: plan W=%.1f σ=(%g,%g), %d replications\n\n",
		cfg.Name(), *boost, *rho, b.W, b.Sigma1, b.Sigma2, *n)

	est, err := respeed.SimulatePatterns(cfg, plan, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	wantT := p.ExpectedTime(plan.W, plan.Sigma1, plan.Sigma2)
	wantE := p.ExpectedEnergy(plan.W, plan.Sigma1, plan.Sigma2)

	tab := tablefmt.New("quantity", "analytical", "simulated", "±CI95", "rel.err")
	tab.AddRowValues("T(W,σ1,σ2) [s]", wantT, est.Time.Mean, est.Time.CI95,
		relErr(est.Time.Mean, wantT))
	tab.AddRowValues("E(W,σ1,σ2) [mW·s]", wantE, est.Energy.Mean, est.Energy.CI95,
		relErr(est.Energy.Mean, wantE))
	tab.AddRowValues("T/W", wantT/plan.W, est.TimePerWork.Mean, est.TimePerWork.CI95,
		relErr(est.TimePerWork.Mean, wantT/plan.W))
	tab.AddRowValues("E/W", wantE/plan.W, est.EnergyPerWork.Mean, est.EnergyPerWork.CI95,
		relErr(est.EnergyPerWork.Mean, wantE/plan.W))
	fmt.Println(tab.String())
	fmt.Printf("mean attempts per pattern: %.4f\n", est.MeanAttempts)
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// runScenario executes one of the engine's composed scenarios: policy
// combinations that required the unified discrete-event core.
func runScenario(cfg respeed.Config, name string, seed uint64, reps int) {
	p := respeed.ParamsFor(cfg)
	sc := respeed.Scenario{
		Plan:      respeed.Plan{W: 50, Sigma1: 0.4, Sigma2: 0.8},
		Costs:     respeed.Costs{C: p.C, V: p.V, R: p.R},
		Model:     respeed.PowerModelFor(cfg),
		TotalWork: 500,
	}
	switch name {
	case "cluster-twolevel":
		// 4-node platform + memory/disk checkpoint tier.
		sc.Nodes = respeed.UniformScenarioNodes(4, 2e-3, 5e-4)
		sc.TwoLevel = &respeed.TwoLevelSpec{MemC: p.C / 4, DiskC: p.C, DiskR: 2 * p.R, Every: 3}
	case "partial-failstop":
		// Intermediate partial verifications + fail-stop errors.
		sc.Costs.LambdaS, sc.Costs.LambdaF = 2e-3, 5e-4
		sc.Partial = &respeed.PartialExec{Segments: 4, Coverage: 0.8, Cost: p.V / 4}
	default:
		fmt.Fprintf(os.Stderr, "simulate: unknown scenario %q (use cluster-twolevel or partial-failstop)\n", name)
		os.Exit(1)
	}
	mk := func() respeed.Workload { return respeed.NewStreamWorkload(7, 64) }

	rep, err := respeed.RunScenario(sc, mk, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("scenario %s on %s (one run, seed %d):\n", name, cfg.Name(), seed)
	fmt.Printf("  makespan        %.1f s\n", rep.Makespan)
	fmt.Printf("  energy          %.1f mW·s\n", rep.Energy)
	fmt.Printf("  patterns        %d committed (attempts %d)\n", rep.Patterns, rep.Attempts)
	fmt.Printf("  silent errors   %d injected, %d detected\n", rep.SilentInjected, rep.SilentDetected)
	fmt.Printf("  fail-stops      %d\n", rep.FailStops)
	if sc.TwoLevel != nil {
		fmt.Printf("  mem/disk ckpts  %d / %d (recoveries %d / %d, patterns lost %d)\n",
			rep.MemCommits, rep.DiskCommits, rep.MemRecoveries, rep.DiskRecoveries, rep.PatternsLost)
	}
	if sc.Partial != nil {
		fmt.Printf("  partial checks  %d (%d detections)\n", rep.PartialChecks, rep.PartialDetections)
	}
	if rep.PerNodeErrors != nil {
		fmt.Printf("  per-node errors %v\n", rep.PerNodeErrors)
	}
	fmt.Printf("  state digest    %016x\n", uint64(rep.StateDigest))

	est, err := respeed.ReplicateScenario(sc, mk, seed, reps, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d replications:\n", reps)
	fmt.Printf("  makespan        %.1f ± %.1f s (CI95 %.1f)\n", est.Time.Mean, est.Time.StdDev, est.Time.CI95)
	fmt.Printf("  energy          %.1f ± %.1f mW·s\n", est.Energy.Mean, est.Energy.StdDev)
	fmt.Printf("  mean attempts   %.2f per run\n", est.MeanAttempts)
}

// runSpec executes a declarative scenario spec file: the same composed
// engine as -scenario, driven by a JSON document instead of a named
// preset.
func runSpec(cfg respeed.Config, path string, seed uint64, reps int) {
	s, err := respeed.ParseScenarioSpecFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	sc, err := respeed.CompileSpec(s, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	hash, err := respeed.SpecHash(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	name := s.Name
	if name == "" {
		name = "(unnamed)"
	}

	rep, err := respeed.RunScenario(sc, nil, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("spec %s [%s] on %s (one run, seed %d):\n", name, hash, cfg.Name(), seed)
	fmt.Printf("  makespan        %.1f s\n", rep.Makespan)
	fmt.Printf("  energy          %.1f mW·s\n", rep.Energy)
	fmt.Printf("  patterns        %d committed (attempts %d)\n", rep.Patterns, rep.Attempts)
	fmt.Printf("  silent errors   %d injected, %d detected\n", rep.SilentInjected, rep.SilentDetected)
	fmt.Printf("  fail-stops      %d\n", rep.FailStops)
	if sc.TwoLevel != nil {
		fmt.Printf("  mem/disk ckpts  %d / %d (recoveries %d / %d, patterns lost %d)\n",
			rep.MemCommits, rep.DiskCommits, rep.MemRecoveries, rep.DiskRecoveries, rep.PatternsLost)
	}
	if sc.Partial != nil {
		fmt.Printf("  partial checks  %d (%d detections)\n", rep.PartialChecks, rep.PartialDetections)
	}
	if rep.PerNodeErrors != nil {
		fmt.Printf("  per-node errors %v\n", rep.PerNodeErrors)
	}
	fmt.Printf("  state digest    %016x\n", uint64(rep.StateDigest))

	est, err := respeed.ReplicateScenario(sc, nil, seed, reps, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d replications:\n", reps)
	fmt.Printf("  makespan        %.1f ± %.1f s (CI95 %.1f)\n", est.Time.Mean, est.Time.StdDev, est.Time.CI95)
	fmt.Printf("  energy          %.1f ± %.1f mW·s\n", est.Energy.Mean, est.Energy.StdDev)
	fmt.Printf("  mean attempts   %.2f per run\n", est.MeanAttempts)
}

func runExec(cfg respeed.Config, wlName string, seed uint64, showTrace bool) {
	var wl respeed.Workload
	switch wlName {
	case "heat":
		wl = respeed.NewHeatWorkload(512, 0.25)
	case "stream":
		wl = respeed.NewStreamWorkload(seed, 128)
	case "matvec":
		wl = respeed.NewMatVecWorkload(256)
	default:
		fmt.Fprintf(os.Stderr, "simulate: unknown workload %q\n", wlName)
		os.Exit(1)
	}
	p := respeed.ParamsFor(cfg)
	var rec *respeed.Trace
	if showTrace {
		rec = respeed.NewTrace(400)
	}
	rep, err := respeed.RunWorkload(respeed.ExecConfig{
		Plan:      respeed.Plan{W: 50, Sigma1: 0.4, Sigma2: 0.8},
		Costs:     respeed.Costs{C: p.C, V: p.V, R: p.R, LambdaS: 2e-3, LambdaF: 5e-4},
		Model:     respeed.PowerModelFor(cfg),
		TotalWork: 1000,
		Trace:     rec,
	}, wl, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("workload %s on %s:\n", wl.Name(), cfg.Name())
	fmt.Printf("  makespan        %.1f s\n", rep.Makespan)
	fmt.Printf("  energy          %.1f mW·s\n", rep.Energy)
	fmt.Printf("  patterns        %d (attempts %d)\n", rep.Patterns, rep.Attempts)
	fmt.Printf("  silent errors   %d injected, %d detected\n", rep.SilentInjected, rep.SilentDetected)
	fmt.Printf("  fail-stops      %d\n", rep.FailStops)
	fmt.Printf("  progress        %.1f work units\n", rep.FinalProgress)
	fmt.Printf("  state digest    %016x\n", uint64(rep.StateDigest))
	fmt.Printf("  checkpoints     %s\n", rep.CkptStats)
	if showTrace {
		fmt.Println("\nschedule (first 400 events):")
		fmt.Print(rec.Render())
		fmt.Println("\ntimeline:")
		fmt.Print(respeed.GanttTrace(rec.Events(), 100))
	}
}

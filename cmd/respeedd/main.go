// Command respeedd is the respeed planning daemon: a long-running
// HTTP/JSON service exposing the BiCrit solver surface over the
// platform catalog, with an LRU result cache, singleflight
// deduplication, bounded in-flight work, and graceful shutdown on
// SIGINT/SIGTERM. With -jobs-dir it additionally runs the crash-safe
// campaign subsystem behind /v1/jobs: sharded asynchronous campaigns,
// journaled to disk after every completed shard, resumed automatically
// when the daemon restarts over the same directory.
//
// Endpoints:
//
//	GET    /v1/solve?config=Hera/XScale&rho=3[&speeds=0.4,0.8][&single=1]
//	GET    /v1/sigma1-table?config=...&rho=...
//	GET    /v1/gain?config=...&rho=...
//	GET    /v1/simulate?config=...&rho=...[&n=10000][&seed=1][&scenario=...]
//	GET    /v1/simulate/events?config=...&rho=...[&n=10][&scenario=...]  (SSE)
//	GET    /v1/configs
//	POST   /v1/shards                 execute one campaign shard (fleet data plane)
//	POST   /v1/jobs                   submit a campaign (with -jobs-dir)
//	GET    /v1/jobs                   list jobs
//	GET    /v1/jobs/{id}              job status
//	GET    /v1/jobs/{id}/result      finished result
//	GET    /v1/jobs/{id}/events      SSE progress stream
//	GET    /v1/jobs/{id}/trace       flight-recorder shard timeline
//	DELETE /v1/jobs/{id}              cancel
//	GET    /v1/fleet/metrics          federated fleet exposition (coordinator only)
//	GET    /healthz                   liveness + build info
//	GET    /metrics                   Prometheus text (?format=json for the snapshot)
//	GET    /debug/traces              recent request traces (?id= ?name= ?limit= filters)
//
// With -debug-addr a second, private listener serves net/http/pprof
// profiles and expvar counters (keep it off the public network).
//
// Fleet mode: with -peers the daemon becomes a campaign COORDINATOR —
// jobs submitted to /v1/jobs are sharded and dispatched to the listed
// peer daemons' POST /v1/shards endpoints (requires -jobs-dir for the
// journal). Every daemon is also a shard WORKER: it serves /v1/shards
// for peer coordinators, gated by -fleet-token when set. Because
// shards are deterministic in (campaign, plan), a fleet-sharded
// campaign's result hash is byte-identical to a single-node run.
//
// Fleet observability: a coordinator scrapes every peer's /metrics at
// -fleet-scrape-interval and serves the merged, peer-labeled
// exposition on /v1/fleet/metrics; with -trace-remote (the default) it
// ships trace headers on every dispatch and grafts the worker's shard
// span into its own /debug/traces tree. Every campaign records a
// per-shard flight-recorder timeline on /v1/jobs/{id}/trace.
//
// Usage:
//
//	respeedd [-addr :8080] [-cache-size 4096] [-max-inflight N]
//	         [-request-timeout 10s] [-drain 15s] [-max-simulations 1000000]
//	         [-jobs-dir DIR] [-jobs-workers N] [-jobs-max 64]
//	         [-admit-policy SPEC] [-admit-express N] [-admit-queue N]
//	         [-admit-overload reject|degrade]
//	         [-peers URL[=W],URL[=W],...] [-fleet-policy round-robin|least-loaded|weighted]
//	         [-fleet-token TOKEN] [-fleet-max-shards N] [-fleet-heartbeat 2s]
//	         [-fleet-shard-timeout 2m] [-fleet-local]
//	         [-fleet-scrape-interval 10s] [-trace-remote]
//	         [-log-level info] [-log-format text] [-debug-addr ADDR]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"respeed"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")

	var cacheSize int
	flag.IntVar(&cacheSize, "cache-size", 4096, "LRU result-cache capacity in entries (default 4096)")
	flag.IntVar(&cacheSize, "cache", 4096, "alias for -cache-size")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrent solver computations (default 0 = GOMAXPROCS)")
	var timeout time.Duration
	flag.DurationVar(&timeout, "request-timeout", 10*time.Second, "per-request wait bound (default 10s)")
	flag.DurationVar(&timeout, "timeout", 10*time.Second, "alias for -request-timeout")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain bound (default 15s)")
	var maxSim int
	flag.IntVar(&maxSim, "max-simulations", 1_000_000, "cap on the n parameter of /v1/simulate (default 1000000)")
	flag.IntVar(&maxSim, "max-sim", 1_000_000, "alias for -max-simulations")

	jobsDir := flag.String("jobs-dir", "", "campaign journal directory; empty disables /v1/jobs")
	jobsWorkers := flag.Int("jobs-workers", 0, "max concurrently executing campaign shards (default 0 = GOMAXPROCS)")
	jobsMax := flag.Int("jobs-max", 64, "retained jobs cap; beyond it the oldest finished job is evicted (default 64)")

	admitPolicy := flag.String("admit-policy", "always",
		"admission policy: always | reject | token-bucket:rate=R,burst=B | fair-share:rate=R,burst=B,tenants=N")
	admitExpress := flag.Int("admit-express", 0,
		"express-lane slots for closed-form endpoints (default 0 = -max-inflight)")
	admitQueue := flag.Int("admit-queue", 0,
		"per-lane wait-queue bound; past it requests answer 429 immediately (0 = 4x the lane's slots, negative disables queueing)")
	admitOverload := flag.String("admit-overload", "reject",
		"saturated heavy-lane answer: reject (429 + Retry-After) or degrade (reduced-n partial estimate)")

	peers := flag.String("peers", "",
		"fleet peers to dispatch campaign shards to, comma-separated base URLs with optional weights (http://host:port[=W]); empty disables coordinator mode")
	fleetPolicy := flag.String("fleet-policy", "round-robin",
		"shard routing policy: round-robin | least-loaded | weighted")
	fleetToken := flag.String("fleet-token", "",
		"bearer token for /v1/shards: workers require it, coordinators present it (empty disables auth)")
	fleetMaxShards := flag.Int("fleet-max-shards", 0,
		"max concurrently executing remote shards on this worker (default 0 = 2x GOMAXPROCS)")
	fleetHeartbeat := flag.Duration("fleet-heartbeat", 2*time.Second,
		"peer health-probe interval (default 2s)")
	fleetShardTimeout := flag.Duration("fleet-shard-timeout", 2*time.Minute,
		"bound on one remote shard attempt before it is re-dispatched (default 2m)")
	fleetLocal := flag.Bool("fleet-local", true,
		"execute shards in-process when no peer is live (coordinator fallback; default true)")
	fleetScrape := flag.Duration("fleet-scrape-interval", 10*time.Second,
		"peer /metrics scrape interval feeding /v1/fleet/metrics (coordinator only; 0 disables federation)")
	traceRemote := flag.Bool("trace-remote", true,
		"propagate trace headers on shard dispatch and graft worker spans into /debug/traces (default true)")

	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log line format: text or json")
	debugAddr := flag.String("debug-addr", "", "private pprof/expvar listen address; empty disables it")
	flag.Parse()

	logger, err := respeed.NewStructuredLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "respeedd: %v\n", err)
		os.Exit(1)
	}

	policy, err := respeed.NewAdmissionPolicy(*admitPolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "respeedd: %v\n", err)
		os.Exit(1)
	}
	if *admitOverload != respeed.OverloadReject && *admitOverload != respeed.OverloadDegrade {
		fmt.Fprintf(os.Stderr, "respeedd: -admit-overload must be %q or %q (got %q)\n",
			respeed.OverloadReject, respeed.OverloadDegrade, *admitOverload)
		os.Exit(1)
	}

	// The heavy lane is built here, not inside the server, so campaign
	// shards and interactive /v1/simulate traffic share one compute
	// bound: shards wait (never shed) while foreground requests past
	// the queue bound fail fast or degrade.
	heavySlots := *maxInFlight
	if heavySlots <= 0 {
		heavySlots = runtime.GOMAXPROCS(0)
	}
	heavyQueue := *admitQueue
	if heavyQueue == 0 {
		heavyQueue = 4 * heavySlots
	}
	heavyLane := respeed.NewAdmitLane("heavy", heavySlots, heavyQueue)

	// One registry backs /metrics for the server, the job manager and
	// the engine-level counters, so a single scrape sees everything —
	// and one trace ring backs /debug/traces for HTTP requests and
	// campaign jobs, so a job ID finds every span it produced.
	telemetry := respeed.NewTelemetry()
	traceRing := respeed.NewTraceRing(0)

	// Every daemon is a fleet worker: peers may ship campaign shards to
	// its POST /v1/shards endpoint (503 only if explicitly disabled in
	// code; auth via -fleet-token).
	worker := respeed.NewFleetWorker(respeed.FleetWorkerOptions{
		MaxActive: *fleetMaxShards,
		Token:     *fleetToken,
		Registry:  telemetry,
		Logger:    logger,
	})

	// With -peers the daemon is additionally a coordinator: campaigns
	// submitted to /v1/jobs dispatch their shards across the fleet.
	var coordinator *respeed.FleetCoordinator
	if *peers != "" {
		if *jobsDir == "" {
			fmt.Fprintln(os.Stderr, "respeedd: -peers requires -jobs-dir (the coordinator journals every shard)")
			os.Exit(1)
		}
		peerList, err := respeed.ParseFleetPeers(*peers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "respeedd: %v\n", err)
			os.Exit(1)
		}
		policy, err := respeed.NewFleetPolicy(*fleetPolicy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "respeedd: %v\n", err)
			os.Exit(1)
		}
		coordinator, err = respeed.NewFleetCoordinator(respeed.FleetCoordinatorOptions{
			Peers:          peerList,
			Policy:         policy,
			Token:          *fleetToken,
			HeartbeatEvery: *fleetHeartbeat,
			ShardTimeout:   *fleetShardTimeout,
			LocalFallback:  *fleetLocal,
			LocalGate:      heavyLane,
			ScrapeInterval: *fleetScrape,
			TraceRemote:    *traceRemote,
			Registry:       telemetry,
			Logger:         logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "respeedd: %v\n", err)
			os.Exit(1)
		}
		defer coordinator.Close()
		logger.Info("fleet coordinator ready",
			"peers", len(peerList), "policy", policy.Name(),
			"heartbeat", *fleetHeartbeat, "shard_timeout", *fleetShardTimeout,
			"local_fallback", *fleetLocal,
			"scrape_interval", *fleetScrape, "trace_remote", *traceRemote)
	}

	var manager *respeed.JobManager
	if *jobsDir != "" {
		mopts := respeed.JobManagerOptions{
			Dir:      *jobsDir,
			Workers:  *jobsWorkers,
			MaxJobs:  *jobsMax,
			Logger:   logger,
			Registry: telemetry,
			Tracer:   traceRing,
			Gate:     heavyLane,
		}
		if coordinator != nil {
			// Coordinator mode: shards execute on PEERS, so they must not
			// hold local heavy-lane slots — the lane gates only the local
			// fallback (Coordinator.LocalGate above).
			mopts.Gate = nil
			mopts.ShardRunner = coordinator.RunShard
		}
		manager, err = respeed.NewJobManager(mopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "respeedd: %v\n", err)
			os.Exit(1)
		}
		logger.Info("campaign manager ready",
			"dir", *jobsDir, "retained", *jobsMax, "resumed", len(manager.List()))
	}

	srv := respeed.NewPlanningServer(respeed.ServeOptions{
		CacheSize:        cacheSize,
		MaxInFlight:      *maxInFlight,
		RequestTimeout:   timeout,
		DrainTimeout:     *drain,
		MaxSimulations:   maxSim,
		Jobs:             manager,
		Logger:           logger,
		Registry:         telemetry,
		Tracer:           traceRing,
		Admission:        policy,
		ExpressInFlight:  *admitExpress,
		QueueBound:       *admitQueue,
		HeavyLane:        heavyLane,
		OverloadMode:     *admitOverload,
		FleetWorker:      worker,
		FleetCoordinator: coordinator,
	})
	logger.Info("admission ready",
		"policy", policy.Name(), "overload", *admitOverload,
		"heavy_slots", heavySlots, "queue_bound", heavyQueue)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "respeedd: %v\n", err)
		os.Exit(1)
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "respeedd: %v\n", err)
			os.Exit(1)
		}
		dbg := &http.Server{Handler: respeed.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go dbg.Serve(dln)
		defer dbg.Close()
		logger.Info("debug listener ready (pprof, expvar)", "addr", dln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	build := respeed.ReadBuildInfo()
	logger.Info("serving",
		"addr", ln.Addr().String(), "cache", cacheSize, "timeout", timeout,
		"version", build.Version, "revision", build.VCSRevision)
	err = srv.Run(ctx, ln)
	if manager != nil {
		// Close after the HTTP drain: running shards finish their
		// current attempt and journal; unfinished jobs resume at the
		// next start.
		manager.Close()
	}
	if err != nil {
		logger.Error("shutdown error", "err", err)
		os.Exit(1)
	}
	logger.Info("drained and stopped")
}

// Command respeedd is the respeed planning daemon: a long-running
// HTTP/JSON service exposing the BiCrit solver surface over the
// platform catalog, with an LRU result cache, singleflight
// deduplication, bounded in-flight work, and graceful shutdown on
// SIGINT/SIGTERM.
//
// Endpoints:
//
//	GET /v1/solve?config=Hera/XScale&rho=3[&speeds=0.4,0.8][&single=1]
//	GET /v1/sigma1-table?config=...&rho=...
//	GET /v1/gain?config=...&rho=...
//	GET /v1/simulate?config=...&rho=...[&n=10000][&seed=1]
//	GET /v1/configs
//	GET /healthz
//	GET /metrics
//
// Usage:
//
//	respeedd [-addr :8080] [-cache 4096] [-max-inflight N]
//	         [-timeout 10s] [-drain 15s] [-max-sim 1000000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"respeed"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 4096, "LRU result-cache capacity (entries)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrent solver computations (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request wait bound")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain bound")
	maxSim := flag.Int("max-sim", 1_000_000, "cap on the n parameter of /v1/simulate")
	flag.Parse()

	srv := respeed.NewPlanningServer(respeed.ServeOptions{
		CacheSize:      *cacheSize,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,
		MaxSimulations: *maxSim,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "respeedd: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("respeedd: serving on %s (cache=%d entries, timeout=%s)", ln.Addr(), *cacheSize, *timeout)
	if err := srv.Run(ctx, ln); err != nil {
		log.Printf("respeedd: shutdown error: %v", err)
		os.Exit(1)
	}
	log.Printf("respeedd: drained and stopped")
}

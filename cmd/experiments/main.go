// Command experiments runs the full experiment registry — every table
// and figure of the paper plus the validation and ablation studies — and
// renders the results as a single report (the data behind
// EXPERIMENTS.md).
//
// Usage:
//
//	experiments                  # run everything, report to stdout
//	experiments -id figure-4     # run one experiment
//	experiments -list            # list the registry
//	experiments -quick           # smaller sweeps/replications
package main

import (
	"flag"
	"fmt"
	"os"

	"respeed"
)

func main() {
	id := flag.String("id", "", "run a single experiment by ID")
	list := flag.Bool("list", false, "list registered experiments")
	quick := flag.Bool("quick", false, "reduced replication/points for a fast pass")
	seed := flag.Uint64("seed", 0, "override the random seed")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of text")
	mdPath := flag.String("md", "", "also write a Markdown report to this file")
	flag.Parse()

	if *list {
		for _, e := range respeed.Experiments() {
			fmt.Printf("%-28s %s  [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	opts := respeed.DefaultExperimentOpts()
	if *quick {
		opts.Replications = 4000
		opts.Points = 17
	}
	if *seed != 0 {
		opts.Seed = *seed
	}

	var exps []respeed.Experiment
	if *id != "" {
		e, ok := respeed.ExperimentByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *id)
			os.Exit(1)
		}
		exps = []respeed.Experiment{e}
	} else {
		exps = respeed.Experiments()
	}

	failed := 0
	var collected []respeed.ExperimentResult
	for _, e := range exps {
		fmt.Printf("==== %s — %s\n     reproduces: %s\n\n", e.ID, e.Title, e.Paper)
		res, err := e.Run(opts)
		if err != nil {
			fmt.Printf("     ERROR: %v\n\n", err)
			failed++
			continue
		}
		if *asJSON {
			if err := respeed.WriteExperimentJSON(os.Stdout, res); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		for _, t := range res.Tables {
			fmt.Printf("-- %s\n%s\n", t.Caption, t.Table.String())
		}
		for _, f := range res.Figures {
			fmt.Printf("-- series %s: %d points over %s%s, %d curves\n",
				f.Name, len(f.X), f.XLabel, logNote(f.LogX), len(f.Series))
		}
		for _, n := range res.Notes {
			fmt.Printf("   note: %s\n", n)
		}
		fmt.Println()
		collected = append(collected, res)
	}
	if *mdPath != "" {
		fh, err := os.Create(*mdPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		err = respeed.WriteExperimentReport(fh, collected)
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *mdPath)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

func logNote(log bool) string {
	if log {
		return " (log)"
	}
	return ""
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment↔bench index), plus
// micro-benchmarks of the solver and simulators.
//
// Run: go test -bench=. -benchmem
package respeed_test

import (
	"testing"

	"respeed"
)

// benchOpts keeps per-iteration work bounded so -bench completes in
// seconds while still exercising the full experiment code paths.
func benchOpts() respeed.ExperimentOpts {
	return respeed.ExperimentOpts{Seed: 42, Replications: 2000, Points: 21, Workers: 0}
}

// runExperiment is the common driver: one full experiment per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := respeed.ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 && len(res.Figures) == 0 && len(res.Notes) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- Section 4.2 tables ---

func BenchmarkTableRho8(b *testing.B)    { runExperiment(b, "table-rho8") }
func BenchmarkTableRho3(b *testing.B)    { runExperiment(b, "table-rho3") }
func BenchmarkTableRho1775(b *testing.B) { runExperiment(b, "table-rho1775") }
func BenchmarkTableRho14(b *testing.B)   { runExperiment(b, "table-rho14") }

// --- Figures 2–14 ---

func BenchmarkFigure2(b *testing.B)  { runExperiment(b, "figure-2") }
func BenchmarkFigure3(b *testing.B)  { runExperiment(b, "figure-3") }
func BenchmarkFigure4(b *testing.B)  { runExperiment(b, "figure-4") }
func BenchmarkFigure5(b *testing.B)  { runExperiment(b, "figure-5") }
func BenchmarkFigure6(b *testing.B)  { runExperiment(b, "figure-6") }
func BenchmarkFigure7(b *testing.B)  { runExperiment(b, "figure-7") }
func BenchmarkFigure8(b *testing.B)  { runExperiment(b, "figure-8") }
func BenchmarkFigure9(b *testing.B)  { runExperiment(b, "figure-9") }
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "figure-10") }
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "figure-11") }
func BenchmarkFigure12(b *testing.B) { runExperiment(b, "figure-12") }
func BenchmarkFigure13(b *testing.B) { runExperiment(b, "figure-13") }
func BenchmarkFigure14(b *testing.B) { runExperiment(b, "figure-14") }

// --- Section 5 and beyond-paper studies ---

func BenchmarkTheorem2(b *testing.B)       { runExperiment(b, "theorem2-scaling") }
func BenchmarkValidityWindow(b *testing.B) { runExperiment(b, "validity-window") }
func BenchmarkMonteCarloValidation(b *testing.B) {
	runExperiment(b, "validate-montecarlo")
}
func BenchmarkCombinedValidation(b *testing.B) { runExperiment(b, "validate-combined") }
func BenchmarkAblationExactVsFirstOrder(b *testing.B) {
	runExperiment(b, "ablation-exact-vs-firstorder")
}
func BenchmarkGainsSummary(b *testing.B) { runExperiment(b, "gains-summary") }

// --- Micro-benchmarks ---

// BenchmarkSolve measures the paper's O(K²) procedure — quoted as
// "computable in constant time" for constant K; this pins the constant.
func BenchmarkSolve(b *testing.B) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := respeed.Solve(cfg, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveExact measures the exact numeric cross-validator.
func BenchmarkSolveExact(b *testing.B) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := respeed.SolveExact(cfg, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpectedTime measures one exact model evaluation.
func BenchmarkExpectedTime(b *testing.B) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	p := respeed.ParamsFor(cfg)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = p.ExpectedTime(2764, 0.4, 0.8)
	}
	_ = sink
}

// BenchmarkSimulatePatterns measures Monte-Carlo replication throughput.
func BenchmarkSimulatePatterns(b *testing.B) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	cfg.Platform.Lambda *= 100
	plan := respeed.Plan{W: 2764, Sigma1: 0.4, Sigma2: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := respeed.SimulatePatterns(cfg, plan, 1000, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPatternTrace measures a fully traced full-stack execution —
// the Figure 1 schedule reproduction path.
func BenchmarkPatternTrace(b *testing.B) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	p := respeed.ParamsFor(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := respeed.NewTrace(0)
		rep, err := respeed.RunWorkload(respeed.ExecConfig{
			Plan:      respeed.Plan{W: 50, Sigma1: 0.4, Sigma2: 0.8},
			Costs:     respeed.Costs{C: p.C, V: p.V, R: p.R, LambdaS: 2e-3},
			Model:     respeed.PowerModelFor(cfg),
			TotalWork: 500,
			Trace:     rec,
		}, respeed.NewHeatWorkload(128, 0.25), uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Patterns == 0 {
			b.Fatal("no patterns executed")
		}
	}
}

// BenchmarkExecSimHeat measures full-stack execution throughput without
// tracing.
func BenchmarkExecSimHeat(b *testing.B) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	p := respeed.ParamsFor(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := respeed.RunWorkload(respeed.ExecConfig{
			Plan:      respeed.Plan{W: 50, Sigma1: 0.4, Sigma2: 0.8},
			Costs:     respeed.Costs{C: p.C, V: p.V, R: p.R, LambdaS: 1e-3, LambdaF: 5e-4},
			Model:     respeed.PowerModelFor(cfg),
			TotalWork: 500,
		}, respeed.NewHeatWorkload(256, 0.25), uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension studies ---

func BenchmarkCombinedBiCrit(b *testing.B)       { runExperiment(b, "combined-bicrit") }
func BenchmarkContinuousSpeeds(b *testing.B)     { runExperiment(b, "continuous-speeds") }
func BenchmarkVerificationAblation(b *testing.B) { runExperiment(b, "verification-ablation") }
func BenchmarkClusterAggregation(b *testing.B)   { runExperiment(b, "cluster-aggregation") }
func BenchmarkParetoFrontier(b *testing.B)       { runExperiment(b, "pareto-frontier") }
func BenchmarkApplicationPlans(b *testing.B)     { runExperiment(b, "application-plans") }

// BenchmarkSimulateParallel measures the chunked parallel Monte-Carlo
// path (deterministic across worker counts).
func BenchmarkSimulateParallel(b *testing.B) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	cfg.Platform.Lambda *= 100
	plan := respeed.Plan{W: 2764, Sigma1: 0.4, Sigma2: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := respeed.SimulatePatternsParallel(cfg, plan, 1000, uint64(i+1), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanApplication measures end-to-end planning.
func BenchmarkPlanApplication(b *testing.B) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := respeed.PlanApplication(cfg, 3, 7*24*3600); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartialVerification(b *testing.B) { runExperiment(b, "partial-verification") }

func BenchmarkFigure1Traces(b *testing.B)  { runExperiment(b, "figure-1-traces") }
func BenchmarkWasteBreakdown(b *testing.B) { runExperiment(b, "waste-breakdown") }

func BenchmarkSensitivityW(b *testing.B)    { runExperiment(b, "sensitivity-w") }
func BenchmarkBaselinePeriods(b *testing.B) { runExperiment(b, "baseline-periods") }

func BenchmarkPairGrid(b *testing.B) { runExperiment(b, "pair-grid") }

func BenchmarkEnergyComponents(b *testing.B) { runExperiment(b, "energy-components") }

func BenchmarkTwoLevelK(b *testing.B) { runExperiment(b, "twolevel-k") }

func BenchmarkSpeedDesign(b *testing.B) { runExperiment(b, "speed-design") }

package respeed_test

import (
	"math"
	"testing"

	"respeed"
)

func TestQuickstartFlow(t *testing.T) {
	cfg, ok := respeed.ConfigByName("Hera/XScale")
	if !ok {
		t.Fatal("Hera/XScale not in catalog")
	}
	sol, err := respeed.Solve(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Best.Sigma1 != 0.4 || sol.Best.Sigma2 != 0.4 {
		t.Errorf("best pair (%g,%g)", sol.Best.Sigma1, sol.Best.Sigma2)
	}
	if math.Floor(sol.Best.W) != 2764 || math.Floor(sol.Best.EnergyOverhead) != 416 {
		t.Errorf("W=%g E/W=%g", sol.Best.W, sol.Best.EnergyOverhead)
	}
}

func TestFacadeCatalog(t *testing.T) {
	if got := len(respeed.Configs()); got != 8 {
		t.Errorf("configs = %d", got)
	}
	if got := len(respeed.ConfigNames()); got != 8 {
		t.Errorf("names = %d", got)
	}
	if _, ok := respeed.ConfigByName("nope"); ok {
		t.Error("bogus config resolved")
	}
}

func TestFacadeSingleVsTwoSpeed(t *testing.T) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	gain, err := respeed.TwoSpeedGain(cfg, 1.775)
	if err != nil {
		t.Fatal(err)
	}
	if !(gain > 0) {
		t.Errorf("gain = %g at ρ=1.775, want > 0", gain)
	}
	one, err := respeed.SolveSingleSpeed(cfg, 1.775)
	if err != nil {
		t.Fatal(err)
	}
	two, err := respeed.Solve(cfg, 1.775)
	if err != nil {
		t.Fatal(err)
	}
	wantGain := (one.Best.EnergyOverhead - two.Best.EnergyOverhead) / one.Best.EnergyOverhead
	if math.Abs(gain-wantGain) > 1e-12 {
		t.Errorf("gain %g inconsistent with solutions (%g)", gain, wantGain)
	}
}

func TestFacadeExactSolver(t *testing.T) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	best, grid, err := respeed.SolveExact(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best.Sigma1 != 0.4 || best.Sigma2 != 0.4 {
		t.Errorf("exact best pair (%g,%g)", best.Sigma1, best.Sigma2)
	}
	if len(grid) != 25 {
		t.Errorf("grid size %d", len(grid))
	}
}

func TestFacadeSigma1Table(t *testing.T) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	rows := respeed.Sigma1Table(cfg, 1.4)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	feasible := 0
	for _, r := range rows {
		if r.Feasible {
			feasible++
		}
	}
	if feasible != 2 {
		t.Errorf("feasible σ1 count = %d, want 2 (paper ρ=1.4 table)", feasible)
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	p := respeed.ParamsFor(cfg)
	p.Lambda *= 100
	// Simulate at the boosted rate by overriding the catalog value: use
	// SimulatePatterns on an artificial config.
	boosted := cfg
	boosted.Platform.Lambda = p.Lambda
	plan := respeed.Plan{W: 2764, Sigma1: 0.4, Sigma2: 0.8}
	est, err := respeed.SimulatePatterns(boosted, plan, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := p.ExpectedTime(plan.W, plan.Sigma1, plan.Sigma2)
	if d := math.Abs(est.Time.Mean - want); d > 4*est.Time.StdErr {
		t.Errorf("sim mean %g vs analytic %g (Δ=%g, 4se=%g)", est.Time.Mean, want, d, 4*est.Time.StdErr)
	}
}

func TestFacadeRunWorkload(t *testing.T) {
	cfg, _ := respeed.ConfigByName("Hera/XScale")
	p := respeed.ParamsFor(cfg)
	rep, err := respeed.RunWorkload(respeed.ExecConfig{
		Plan:      respeed.Plan{W: 50, Sigma1: 0.4, Sigma2: 0.8},
		Costs:     respeed.Costs{C: p.C, V: p.V, R: p.R, LambdaS: 2e-3},
		Model:     respeed.PowerModelFor(cfg),
		TotalWork: 300,
	}, respeed.NewHeatWorkload(128, 0.25), 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SilentDetected != rep.SilentInjected {
		t.Errorf("detections %d != injections %d", rep.SilentDetected, rep.SilentInjected)
	}
	if rep.FinalProgress != 300 {
		t.Errorf("progress %g", rep.FinalProgress)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(respeed.Experiments()) < 20 {
		t.Errorf("experiments = %d", len(respeed.Experiments()))
	}
	e, ok := respeed.ExperimentByID("table-rho3")
	if !ok {
		t.Fatal("table-rho3 missing")
	}
	res, err := e.Run(respeed.ExperimentOpts{Points: 5, Replications: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Error("no tables from table-rho3")
	}
	if respeed.DefaultExperimentOpts().Replications == 0 {
		t.Error("default opts empty")
	}
}

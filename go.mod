module respeed

go 1.22

// heraxscale reproduces the four Section 4.2 tables of the paper for the
// Hera/XScale configuration: for each first-execution speed σ1 and each
// bound ρ ∈ {8, 3, 1.775, 1.4}, the best re-execution speed σ2, the
// optimal pattern size, and the energy overhead. The printed numbers
// match the paper row for row.
package main

import (
	"fmt"
	"log"
	"math"

	"respeed"
	"respeed/internal/tablefmt"
)

func main() {
	cfg, ok := respeed.ConfigByName("Hera/XScale")
	if !ok {
		log.Fatal("Hera/XScale not in catalog")
	}

	for _, rho := range []float64{8, 3, 1.775, 1.4} {
		fmt.Printf("ρ = %g\n", rho)
		tab := tablefmt.New("σ1", "Best σ2", "Wopt", "E(Wopt,σ1,σ2)/Wopt")
		for _, r := range respeed.Sigma1Table(cfg, rho) {
			if !r.Feasible {
				tab.AddRow(tablefmt.Cell(r.Sigma1), "-", "-", "-")
				continue
			}
			tab.AddRowValues(r.Sigma1, r.Sigma2, math.Floor(r.W), math.Floor(r.EnergyOverhead))
		}
		fmt.Println(tab.String())

		if sol, err := respeed.Solve(cfg, rho); err == nil {
			fmt.Printf("optimal pair: (%g, %g)\n\n", sol.Best.Sigma1, sol.Best.Sigma2)
		} else {
			fmt.Printf("infeasible\n\n")
		}
	}

	// The paper's observation: almost any pair (except those with the
	// very low 0.15 speed) becomes optimal for SOME ρ. Demonstrate by
	// scanning bounds and collecting the winners.
	winners := map[[2]float64]float64{}
	for rho := 1.05; rho <= 9; rho += 0.005 {
		sol, err := respeed.Solve(cfg, rho)
		if err != nil {
			continue
		}
		key := [2]float64{sol.Best.Sigma1, sol.Best.Sigma2}
		if _, seen := winners[key]; !seen {
			winners[key] = rho
		}
	}
	fmt.Printf("distinct optimal pairs across ρ ∈ [1.05, 9]: %d\n", len(winners))
	for pair, rho := range winners {
		fmt.Printf("  (%g, %g) first optimal at ρ ≈ %.3f\n", pair[0], pair[1], rho)
	}
}

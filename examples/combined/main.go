// combined explores Section 5 of the paper: a platform subject to BOTH
// fail-stop and silent errors. It shows (1) the validity window of the
// paper's first-order approximation, (2) the numeric BiCrit solution
// that works for any speed pair — the general case the paper leaves
// open — and (3) the reproduction finding about Propositions 4–5.
package main

import (
	"fmt"
	"log"

	"respeed"
	"respeed/internal/tablefmt"
)

func main() {
	cfg, ok := respeed.ConfigByName("Hera/XScale")
	if !ok {
		log.Fatal("config not found")
	}
	p := respeed.ParamsFor(cfg)
	p.Lambda *= 100 // an error-rich regime so the error mix matters
	speeds := cfg.Processor.Speeds

	fmt.Println("1. First-order validity window (2(1+s/f))^{-1/2} < σ2/σ1 < 2(1+s/f):")
	wtab := tablefmt.New("fail-stop fraction f", "lower", "upper")
	for _, f := range []float64{0.1, 0.5, 1.0} {
		lo, hi := p.Split(f).SpeedRatioWindow()
		wtab.AddRowValues(f, lo, hi)
	}
	fmt.Println(wtab.String())

	fmt.Println("2. Numeric BiCrit (exact recursion, any pair) at ρ=3:")
	stab := tablefmt.New("f", "σ1", "σ2", "Wopt", "E/W")
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		best, _, err := respeed.SolveCombined(p.Split(f), speeds, 3)
		if err != nil {
			log.Fatalf("f=%g: %v", f, err)
		}
		stab.AddRowValues(f, best.Sigma1, best.Sigma2, best.W, best.EnergyOverhead)
	}
	fmt.Println(stab.String())
	fmt.Println("(more fail-stop in the mix → cheaper: crashes are caught immediately,")
	fmt.Println(" silent errors only at the end-of-pattern verification)")

	fmt.Println("\n3. Propositions 4–5 vs the Equation (8) recursion (W=2764, σ=(0.4,0.8)):")
	cp := p.Split(0.5)
	rec := cp.ExpectedTimeCombined(2764, 0.4, 0.8)
	printed := cp.ExpectedTimeCombinedClosedForm(2764, 0.4, 0.8)
	fmt.Printf("   recursion: %.2f s    printed Prop. 4: %.2f s    Δ = %.2f s\n", rec, printed, printed-rec)
	fmt.Println("   The printed form books one extra re-executed verification;")
	fmt.Println("   Monte-Carlo simulation sides with the recursion (see EXPERIMENTS.md).")
}

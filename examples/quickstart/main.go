// Quickstart: solve the BiCrit problem for a catalog configuration and
// print the optimal pattern — the 20-line version of the paper.
package main

import (
	"fmt"
	"log"

	"respeed"
)

func main() {
	// Pick one of the paper's eight virtual configurations.
	cfg, ok := respeed.ConfigByName("Hera/XScale")
	if !ok {
		log.Fatal("configuration not found")
	}

	// Minimize expected energy per work unit subject to the expected
	// time per work unit staying below ρ = 3 seconds.
	sol, err := respeed.Solve(cfg, 3.0)
	if err != nil {
		log.Fatalf("no feasible pattern: %v", err)
	}
	best := sol.Best
	fmt.Printf("Run chunks of W = %.0f work units.\n", best.W)
	fmt.Printf("Execute at σ1 = %.2f; after a detected error, re-execute at σ2 = %.2f.\n",
		best.Sigma1, best.Sigma2)
	fmt.Printf("Expected overheads: %.2f s and %.2f mW·s per work unit.\n",
		best.TimeOverhead, best.EnergyOverhead)

	// How much does the freedom to change speed on re-execution buy?
	gain, err := respeed.TwoSpeedGain(cfg, 1.775)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("At a tight bound ρ = 1.775 the second speed saves %.1f%% energy.\n", 100*gain)
}

// failstop2x demonstrates Theorem 2, the paper's most striking result:
// under fail-stop errors with re-execution at twice the first speed, the
// optimal checkpointing pattern scales as λ^{-2/3} — not the classical
// Young/Daly λ^{-1/2}. The example minimizes the *exact* expected time
// numerically across five decades of error rate and fits both exponents.
package main

import (
	"fmt"
	"log"
	"math"

	"respeed"
	"respeed/internal/mathx"
	"respeed/internal/stats"
	"respeed/internal/tablefmt"
)

func main() {
	const c, r, sigma = 300.0, 300.0, 0.5

	tab := tablefmt.New("λ", "MTBF", "Wopt exact (σ2=2σ)", "(12C/λ²)^⅓·σ", "Wopt exact (σ2=σ)", "Young σ√(2C/λ)")
	var lx, ly2x, ly1x []float64
	for _, lambda := range []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3} {
		fp := respeed.FailStopParams{Lambda: lambda, C: c, R: r}

		w2x, err := mathx.MinimizeConvex1D(func(w float64) float64 {
			return fp.ExactTimeFailStop(w, sigma, 2*sigma) / w
		}, fp.Theorem2W(sigma), 1e-9)
		if err != nil {
			log.Fatal(err)
		}
		w1x, err := mathx.MinimizeConvex1D(func(w float64) float64 {
			return fp.ExactTimeFailStop(w, sigma, sigma) / w
		}, fp.YoungDalyW(sigma), 1e-9)
		if err != nil {
			log.Fatal(err)
		}

		tab.AddRowValues(lambda, 1/lambda, w2x, fp.Theorem2W(sigma), w1x, fp.YoungDalyW(sigma))
		lx = append(lx, math.Log(lambda))
		ly2x = append(ly2x, math.Log(w2x))
		ly1x = append(ly1x, math.Log(w1x))
	}
	fmt.Println(tab.String())

	slope2x, _ := stats.LinearFit(lx, ly2x)
	slope1x, _ := stats.LinearFit(lx, ly1x)
	fmt.Printf("\nfitted scaling exponents of Wopt vs λ:\n")
	fmt.Printf("  σ2 = 2σ1 : %+.4f   (Theorem 2 predicts  -2/3 ≈ -0.6667)\n", slope2x)
	fmt.Printf("  σ2 =  σ1 : %+.4f   (Young/Daly predicts -1/2)\n", slope1x)
	fmt.Println("\nRe-executing twice as fast fundamentally changes the optimal")
	fmt.Println("checkpointing regime: longer patterns are affordable because a")
	fmt.Println("failed attempt is repaired at double speed.")
}

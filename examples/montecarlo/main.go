// montecarlo validates the paper's analytical expectations against the
// simulator at two levels:
//
//  1. Abstract pattern replication: 10⁵ samples of the renewal process,
//     compared with Propositions 2–3.
//  2. Full-stack execution: a real 1-D heat stencil driven through fault
//     injection, digest verification, verified checkpoints and recovery;
//     the final state must be bit-identical to an error-free run.
package main

import (
	"fmt"
	"log"

	"respeed"
)

func main() {
	cfg, ok := respeed.ConfigByName("Hera/XScale")
	if !ok {
		log.Fatal("config not found")
	}
	// Boost the error rate 100× so a short run sees plenty of errors.
	cfg.Platform.Lambda *= 100
	p := respeed.ParamsFor(cfg)

	plan := respeed.Plan{W: 2764, Sigma1: 0.4, Sigma2: 0.8}
	const n = 100000
	est, err := respeed.SimulatePatterns(cfg, plan, n, 2024)
	if err != nil {
		log.Fatal(err)
	}
	wantT := p.ExpectedTime(plan.W, plan.Sigma1, plan.Sigma2)
	wantE := p.ExpectedEnergy(plan.W, plan.Sigma1, plan.Sigma2)
	fmt.Printf("Pattern W=%.0f σ=(%.1f,%.1f), λ=%.3g, %d replications:\n",
		plan.W, plan.Sigma1, plan.Sigma2, p.Lambda, n)
	fmt.Printf("  time   : analytic %.2f s     simulated %.2f ± %.2f s\n",
		wantT, est.Time.Mean, est.Time.CI95)
	fmt.Printf("  energy : analytic %.0f mW·s  simulated %.0f ± %.0f mW·s\n",
		wantE, est.Energy.Mean, est.Energy.CI95)
	fmt.Printf("  mean attempts per pattern: %.3f\n\n", est.MeanAttempts)

	// Full-stack run: heat stencil with real state.
	exec := respeed.ExecConfig{
		Plan:      respeed.Plan{W: 50, Sigma1: 0.4, Sigma2: 0.8},
		Costs:     respeed.Costs{C: p.C, V: p.V, R: p.R, LambdaS: 2e-3, LambdaF: 5e-4},
		Model:     respeed.PowerModelFor(cfg),
		TotalWork: 2000,
	}
	faulty, err := respeed.RunWorkload(exec, respeed.NewHeatWorkload(512, 0.25), 99)
	if err != nil {
		log.Fatal(err)
	}
	clean := exec
	clean.Costs.LambdaS, clean.Costs.LambdaF = 0, 0
	ref, err := respeed.RunWorkload(clean, respeed.NewHeatWorkload(512, 0.25), 99)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Full-stack heat stencil (2000 work units, W=50):\n")
	fmt.Printf("  errors        : %d silent injected (%d detected), %d fail-stops\n",
		faulty.SilentInjected, faulty.SilentDetected, faulty.FailStops)
	fmt.Printf("  makespan      : %.0f s faulty vs %.0f s clean\n", faulty.Makespan, ref.Makespan)
	fmt.Printf("  energy        : %.0f vs %.0f mW·s\n", faulty.Energy, ref.Energy)
	fmt.Printf("  state digests : %016x vs %016x\n", uint64(faulty.StateDigest), uint64(ref.StateDigest))
	if faulty.StateDigest == ref.StateDigest {
		fmt.Println("  => identical final state: every SDC was caught and rolled back.")
	} else {
		fmt.Println("  => STATES DIFFER: the protocol failed!")
	}
}

// planner takes the paper's model from "a formula" to "running a job":
// it plans a long application end to end (pattern size, speeds, expected
// makespan and energy), dry-runs the plan on the full-stack simulator,
// and reconciles the measured waste breakdown against the plan's
// expectations.
package main

import (
	"fmt"
	"log"

	"respeed"
)

func main() {
	cfg, ok := respeed.ConfigByName("Coastal/XScale")
	if !ok {
		log.Fatal("config not found")
	}
	const week = 7 * 24 * 3600.0 // one week of work at full speed

	plan, err := respeed.PlanApplication(cfg, 3.0, week)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Plan:", plan.String())
	fmt.Printf("  %d patterns, expected makespan %.2f days, overhead %.2f%%\n",
		plan.Patterns(), plan.ExpectedMakespan/86400, 100*plan.Overhead())
	fmt.Printf("  99.7%% safety margin: %.2f days\n\n", plan.SafetyMargin(3)/86400)

	// Dry-run a 1/20-scale version of the work with the error rate
	// boosted ×20 so the short run still encounters errors (the full-size
	// job would meet them over weeks; the scaled run meets them within a
	// handful of patterns).
	const scale = 20.0
	const boost = 20.0
	ec := plan.ExecConfig()
	ec.TotalWork = week / scale
	ec.Costs.LambdaS *= boost
	rec := respeed.NewTrace(0)
	ec.Trace = rec

	rep, err := respeed.RunWorkload(ec, respeed.NewHeat2DWorkload(64, 0.2), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dry run (scale 1/%g): %d patterns, %d attempts, %d SDCs (all %d detected)\n",
		scale, rep.Patterns, rep.Attempts, rep.SilentInjected, rep.SilentDetected)

	waste, err := respeed.AnalyzeTrace(rec.Events())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Waste breakdown: %s\n", waste.String())
	fmt.Printf("Efficiency %.1f%% — the plan spends the rest on surviving errors.\n",
		100*waste.Efficiency())
}

// atlascrusoe reproduces Figure 2 of the paper: sweeping the
// checkpointing cost C on the Atlas/Crusoe configuration and printing,
// at each point, the optimal speed pair, pattern size and energy
// overhead of the two-speed solution against the single-speed baseline.
// The output shows the paper's qualitative story: the speed staircase,
// the Wopt growth until the performance bound bites, and the two-speed
// saving that grows past 30% at large C.
package main

import (
	"fmt"
	"log"

	"respeed"
	"respeed/internal/tablefmt"
)

func main() {
	cfg, ok := respeed.ConfigByName("Atlas/Crusoe")
	if !ok {
		log.Fatal("Atlas/Crusoe not in catalog")
	}
	const rho = 3.0

	tab := tablefmt.New("C [s]", "σ1", "σ2", "Wopt(σ1,σ2)", "E/W two", "σ", "Wopt(σ,σ)", "E/W one", "saving")
	var bestSaving, bestAt float64
	for c := 0.0; c <= 5000; c += 250 {
		p := cfg
		p.Platform.C, p.Platform.R = c, c

		two, err2 := respeed.Solve(p, rho)
		one, err1 := respeed.SolveSingleSpeed(p, rho)
		if err2 != nil {
			tab.AddRowValues(c, "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		saving := 0.0
		if err1 == nil && one.Best.EnergyOverhead > 0 {
			saving = (one.Best.EnergyOverhead - two.Best.EnergyOverhead) / one.Best.EnergyOverhead
		}
		if saving > bestSaving {
			bestSaving, bestAt = saving, c
		}
		tab.AddRowValues(c,
			two.Best.Sigma1, two.Best.Sigma2, two.Best.W, two.Best.EnergyOverhead,
			one.Best.Sigma1, one.Best.W, one.Best.EnergyOverhead,
			fmt.Sprintf("%.1f%%", 100*saving))
	}
	fmt.Println(tab.String())
	fmt.Printf("\nmaximum two-speed saving: %.1f%% at C = %.0f s\n", 100*bestSaving, bestAt)
	fmt.Println("(the paper reports savings of up to 35% on this configuration)")
}

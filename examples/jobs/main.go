// jobs demonstrates the campaign subsystem end to end over its HTTP
// surface: it starts the planning service with a job manager, submits a
// Monte-Carlo campaign over the whole catalog with POST /v1/jobs,
// follows the SSE progress stream, and fetches the finished result.
// The journal directory makes the run crash-safe: kill the process
// mid-campaign and a restart over the same directory resumes it,
// re-executing only in-flight shards — with a byte-identical result.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"respeed"
)

func main() {
	dir, err := os.MkdirTemp("", "respeed-jobs-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	manager, err := respeed.NewJobManager(respeed.JobManagerOptions{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer manager.Close()

	srv := respeed.NewPlanningServer(respeed.ServeOptions{Jobs: manager})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Submit: one Monte-Carlo cell per catalog config at ρ=3 (empty
	// Configs selects the whole catalog), sharded into 64 deterministic
	// chunks per cell.
	campaign := respeed.Campaign{
		Name: "catalog-mc-rho3",
		Kind: respeed.CampaignMonteCarlo,
		Rhos: []float64{3},
		N:    50_000,
		Seed: 42,
	}
	body, _ := json.Marshal(campaign)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var st respeed.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted %s (%s): %d shards\n", st.ID, campaign.Name, st.ShardsTotal)

	// Follow the SSE stream until the job reaches a terminal state.
	events, err := http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev respeed.JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			log.Fatal(err)
		}
		if ev.Shard >= 0 && ev.ShardsDone%64 != 0 && !ev.State.Terminal() {
			continue // print one line per completed cell, not per shard
		}
		fmt.Printf("  %s: %d/%d shards\n", ev.State, ev.ShardsDone, ev.ShardsTotal)
		if ev.State.Terminal() {
			break
		}
	}
	events.Body.Close()

	// Fetch the result: one cell per config×ρ, plus a content hash that
	// is identical across interrupted and uninterrupted runs.
	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	var res respeed.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	fmt.Printf("result hash %s\n", res.Hash)
	for _, cell := range res.Cells {
		if cell.Estimate == nil {
			fmt.Printf("  %-16s ρ=%g: infeasible\n", cell.Config, cell.Rho)
			continue
		}
		fmt.Printf("  %-16s ρ=%g: E[energy/work] %.1f (n=%d)\n",
			cell.Config, cell.Rho, cell.Estimate.EnergyPerWork.Mean, campaign.N)
	}

	stop()
	<-done
}

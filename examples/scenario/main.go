// scenario demonstrates the unified simulation engine: the four
// fault-injection simulators share one discrete-event core whose
// policies — fault process, checkpoint tier, verification discipline —
// compose freely. It runs two compositions the original siloed
// simulators could not express:
//
//  1. cluster-twolevel: a 4-node platform (independent per-node Poisson
//     error processes) protected by two-level memory+disk checkpointing;
//  2. partial-failstop: intermediate partial verifications with
//     fail-stop errors in the mix.
//
// Both drive a real state-carrying workload; the final state digest
// must match an error-free run — the engine's end-to-end correctness
// invariant.
package main

import (
	"fmt"
	"log"

	"respeed"
)

func main() {
	cfg, ok := respeed.ConfigByName("Hera/XScale")
	if !ok {
		log.Fatal("config not found")
	}
	p := respeed.ParamsFor(cfg)

	base := respeed.Scenario{
		Plan:      respeed.Plan{W: 50, Sigma1: 0.4, Sigma2: 0.8},
		Costs:     respeed.Costs{C: p.C, V: p.V, R: p.R},
		Model:     respeed.PowerModelFor(cfg),
		TotalWork: 500,
	}
	mk := func() respeed.Workload { return respeed.NewStreamWorkload(7, 64) }

	// Reference: the same workload with no errors at all.
	clean, err := respeed.RunScenario(base, mk, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error-free reference: makespan %.1f s, digest %016x\n\n",
		clean.Makespan, uint64(clean.StateDigest))

	// Composition 1: per-node faults + memory/disk checkpoint tier.
	cluster := base
	cluster.Nodes = respeed.UniformScenarioNodes(4, 2e-3, 5e-4)
	cluster.TwoLevel = &respeed.TwoLevelSpec{MemC: p.C / 4, DiskC: p.C, DiskR: 2 * p.R, Every: 3}

	// Composition 2: partial verifications + fail-stop errors.
	partial := base
	partial.Costs.LambdaS, partial.Costs.LambdaF = 2e-3, 5e-4
	partial.Partial = &respeed.PartialExec{Segments: 4, Coverage: 0.8, Cost: p.V / 4}

	for _, c := range []struct {
		name string
		sc   respeed.Scenario
	}{
		{"cluster-twolevel", cluster},
		{"partial-failstop", partial},
	} {
		rep, err := respeed.RunScenario(c.sc, mk, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (seed 7):\n", c.name)
		fmt.Printf("  makespan %.1f s, energy %.0f mW·s\n", rep.Makespan, rep.Energy)
		fmt.Printf("  %d patterns committed in %d attempts; %d SDCs (all detected: %v), %d fail-stops\n",
			rep.Patterns, rep.Attempts, rep.SilentInjected,
			rep.SilentDetected == rep.SilentInjected, rep.FailStops)
		if c.sc.TwoLevel != nil {
			fmt.Printf("  tier: %d memory / %d disk commits, %d/%d recoveries, %d patterns lost to disk rollbacks\n",
				rep.MemCommits, rep.DiskCommits, rep.MemRecoveries, rep.DiskRecoveries, rep.PatternsLost)
		}
		if c.sc.Partial != nil {
			fmt.Printf("  %d partial checks caught %d corruptions early\n",
				rep.PartialChecks, rep.PartialDetections)
		}
		if rep.PerNodeErrors != nil {
			fmt.Printf("  errors per node: %v\n", rep.PerNodeErrors)
		}
		okDigest := rep.StateDigest == clean.StateDigest
		fmt.Printf("  final digest matches error-free run: %v\n\n", okDigest)
		if !okDigest {
			log.Fatal("state diverged — verified checkpointing must preserve the final state")
		}

		// Replicated estimate, deterministic in (seed, n) for any
		// worker count.
		est, err := respeed.ReplicateScenario(c.sc, mk, 7, 200, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  200 replications: makespan %.1f ± %.1f s, energy %.0f ± %.0f mW·s, %.2f attempts/run\n\n",
			est.Time.Mean, est.Time.CI95, est.Energy.Mean, est.Energy.CI95, est.MeanAttempts)
	}
}

// fleet demonstrates the distributed campaign fabric end to end, in
// one process: it starts two WORKER planning services (each serving
// the POST /v1/shards data plane), then a COORDINATOR whose job
// manager dispatches every campaign shard across them by routing
// policy. The same campaign is also run locally, and the two result
// hashes are compared — they are byte-identical, because a shard is a
// pure function of (campaign, plan) and the coordinator journals
// remote bytes exactly as local ones.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"respeed"
)

// startWorker launches one worker daemon on loopback and returns its
// base URL and a stopper.
func startWorker(token string) (string, func()) {
	worker := respeed.NewFleetWorker(respeed.FleetWorkerOptions{Token: token})
	srv := respeed.NewPlanningServer(respeed.ServeOptions{FleetWorker: worker})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, ln) }()
	return "http://" + ln.Addr().String(), func() { stop(); <-done }
}

func main() {
	const token = "fleet-example-token"

	// Two workers: the fleet's data plane.
	w1, stop1 := startWorker(token)
	defer stop1()
	w2, stop2 := startWorker(token)
	defer stop2()
	fmt.Printf("workers ready: %s, %s\n", w1, w2)

	// The coordinator: a job manager whose ShardRunner hook routes every
	// shard to a peer (least-loaded policy), journaling the returned
	// bytes through the ordinary crash-safe journal.
	policy, err := respeed.NewFleetPolicy("least-loaded")
	if err != nil {
		log.Fatal(err)
	}
	coordinator, err := respeed.NewFleetCoordinator(respeed.FleetCoordinatorOptions{
		Peers:          []respeed.FleetPeer{{URL: w1}, {URL: w2}},
		Policy:         policy,
		Token:          token,
		HeartbeatEvery: 500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coordinator.Close()

	dir, err := os.MkdirTemp("", "respeed-fleet-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	manager, err := respeed.NewJobManager(respeed.JobManagerOptions{
		Dir:         dir,
		ShardRunner: coordinator.RunShard,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer manager.Close()

	srv := respeed.NewPlanningServer(respeed.ServeOptions{
		Jobs:             manager,
		FleetCoordinator: coordinator,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, ln) }()
	defer func() { stop(); <-done }()
	base := "http://" + ln.Addr().String()

	// Submit a Monte-Carlo campaign through the coordinator's HTTP
	// surface; its 128 shards (2 cells × 64 chunks) spread over the
	// fleet.
	campaign := respeed.Campaign{
		Name:    "fleet-demo",
		Kind:    respeed.CampaignMonteCarlo,
		Configs: []string{"Hera/XScale", "Atlas/Crusoe"},
		Rhos:    []float64{3},
		N:       20_000,
		Seed:    7,
	}
	body, _ := json.Marshal(campaign)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var st respeed.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted %s: %d shards over 2 workers\n", st.ID, st.ShardsTotal)

	// Poll to completion.
	for range time.Tick(200 * time.Millisecond) {
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			log.Fatal(err)
		}
		r.Body.Close()
		if st.State.Terminal() {
			break
		}
	}
	if st.State != "done" {
		log.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	fmt.Printf("fleet result hash  %s\n", st.Hash)

	// The determinism proof: the identical campaign run locally (no
	// fleet) hashes to the same bytes.
	localDir, err := os.MkdirTemp("", "respeed-local-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(localDir)
	local, err := respeed.NewJobManager(respeed.JobManagerOptions{Dir: localDir})
	if err != nil {
		log.Fatal(err)
	}
	defer local.Close()
	lst, err := respeed.SubmitCampaign(local, campaign)
	if err != nil {
		log.Fatal(err)
	}
	lst, err = local.Wait(context.Background(), lst.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local result hash  %s\n", lst.Hash)
	if lst.Hash == st.Hash {
		fmt.Println("byte-identical: placement never changes the result")
	} else {
		log.Fatalf("hash mismatch: fleet %s vs local %s", st.Hash, lst.Hash)
	}
}
